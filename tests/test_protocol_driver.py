"""Integration tests for the protocol-driven cluster simulation."""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
from repro.cluster.protocol_driver import ProtocolDrivenCluster
from repro.placement import ANUPolicy
from repro.proto import NetworkConfig, ProtocolConfig
from repro.workloads import SyntheticConfig, Trace, generate_synthetic


def trace(n_requests: int = 8000, duration: float = 1200.0) -> Trace:
    return generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=n_requests,
                        duration=duration, seed=2)
    )


def cluster_cfg(seed: int = 0) -> ClusterConfig:
    return ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                         sample_window=60.0, seed=seed)


def test_protocol_driven_run_completes_and_tunes():
    pd = ProtocolDrivenCluster(cluster_cfg(), trace())
    res = pd.run()
    assert res.run.total_requests == 8000
    assert res.config_updates_applied >= 1
    assert res.run.moves_started > 0
    assert res.delegate_history
    assert res.delegate_history[0][1] == "server4"  # highest priority


def test_protocol_driven_comparable_to_direct_anu():
    t = trace()
    direct = ClusterSimulation(cluster_cfg(), ANUPolicy(), t).run()
    res = ProtocolDrivenCluster(cluster_cfg(), t).run()
    # Same regime: within a small factor of the direct-call delegate.
    assert res.run.mean_latency < 5 * max(direct.mean_latency, 1e-4)


def test_delegate_crash_heals_and_tuning_continues():
    pd = ProtocolDrivenCluster(
        cluster_cfg(), trace(), delegate_crash_times=[400.0]
    )
    res = pd.run()
    assert res.run.total_requests == 8000
    delegates = [d for _, d in res.delegate_history]
    assert delegates[0] == "server4"
    assert "server3" in delegates  # fail-over happened
    # Config updates continued after the crash (epoch still advanced).
    assert res.config_updates_applied >= 2


def test_lossy_network_protocol_still_works():
    pd = ProtocolDrivenCluster(
        cluster_cfg(), trace(),
        network=NetworkConfig(min_latency=0.001, max_latency=0.02, loss=0.1),
    )
    res = pd.run()
    assert res.run.total_requests == 8000
    assert res.messages_dropped > 0
    assert res.config_updates_applied >= 1


def test_run_terminates_with_short_heartbeats():
    """Self-rescheduling protocol timers must not prevent engine drain."""
    pd = ProtocolDrivenCluster(
        cluster_cfg(), trace(n_requests=500, duration=300.0),
        protocol=ProtocolConfig(
            heartbeat_interval=0.2, heartbeat_timeout=0.7,
            election_timeout=0.1, report_timeout=0.2, tuning_interval=60.0,
        ),
    )
    res = pd.run()  # would hang before the shutdown hook existed
    assert res.run.total_requests == 500


def test_config_applied_exactly_once_per_epoch():
    pd = ProtocolDrivenCluster(cluster_cfg(), trace())
    res = pd.run()
    # Every applied epoch is distinct: the apply guard deduplicates the
    # per-node broadcast of each ConfigUpdate.
    assert res.config_updates_applied <= pd.nodes["server4"].epoch
