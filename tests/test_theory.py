"""Tests for the balls-into-bins bounds module."""

import pytest

from repro.theory import (
    anu_normalized_max_after_tuning,
    max_load_simple_randomization,
    normalized_max_load,
    simulate_simple_randomization,
)


def test_heavily_loaded_bound_form():
    # m = n log n boundary: heavily loaded form applies.
    val = max_load_simple_randomization(16, 16 * 10)
    assert val > 10.0  # above the mean


def test_sparse_bound_form():
    val = max_load_simple_randomization(1000, 1000)
    assert val > 1.0


def test_bound_validation():
    with pytest.raises(ValueError):
        max_load_simple_randomization(1, 10)
    with pytest.raises(ValueError):
        max_load_simple_randomization(10, 0)


def test_normalized_max_load():
    assert normalized_max_load([5, 5, 5]) == 1.0
    assert normalized_max_load([9, 0, 0]) == 3.0
    assert normalized_max_load([]) == 1.0


def test_simulation_matches_prediction_loosely():
    exp = simulate_simple_randomization(n_bins=20, n_balls=2000, trials=30)
    assert exp.mean_normalized_max == pytest.approx(
        exp.predicted_normalized_max, rel=0.25
    )
    assert exp.mean_normalized_max > 1.05  # visible imbalance


def test_simple_randomization_imbalance_grows_with_n():
    small = simulate_simple_randomization(n_bins=5, n_balls=500, trials=20)
    large = simulate_simple_randomization(n_bins=80, n_balls=8000, trials=20)
    assert large.mean_normalized_max > small.mean_normalized_max


def test_anu_tuning_caps_imbalance_independent_of_n():
    """After tuning, ANU's normalized max load stays within a small constant
    — the §4 claim — while simple randomization's grows with n."""
    for n in (5, 20):
        ratio = anu_normalized_max_after_tuning(n, n * 100, rounds=25)
        assert ratio < 1.35
    anu_large = anu_normalized_max_after_tuning(40, 4000, rounds=25)
    simple_large = simulate_simple_randomization(40, 4000, trials=10)
    assert anu_large < simple_large.mean_normalized_max
