"""Chaos property tests: stochastic fault schedules through all three stacks.

The :class:`~repro.membership.injector.FaultInjector` generates valid
randomized membership schedules (crash/repair from per-server exponential
processes, commission/decommission churn, delegate crashes); these tests
drive every harness stack with them and assert the paper's recovery
invariants after *every* event, not just at the end:

- ownership uniqueness — each file set has exactly one owner, and it is a
  registered (cluster) / live (fs) server;
- no lost or duplicated requests — everything the trace injected
  completes exactly once, even when crashes orphan queued work;
- placement soundness at quiescence — half occupancy and the paper's
  ``p >= 2*(n+1)`` partition rule hold for the surviving server set;
- determinism — the same injector seed yields the identical schedule on
  every run, so any chaos failure is replayable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
from repro.fs import FileSystemClient, MetadataCluster
from repro.membership import (
    LIMP_CHURN,
    ChaosProfile,
    FaultEvent,
    FaultInjector,
    FaultKind,
    MembershipRoster,
    apply_event,
)
from repro.placement import ANUPolicy, ReplicatedPolicy
from repro.proto import ControlPlane, ProtocolConfig
from repro.runtime import CallbackSink, MemorySink
from repro.runtime.routing import make_router
from repro.units import Seconds
from repro.workloads import SyntheticConfig, generate_synthetic

SPEEDS = {f"server{i}": float(s) for i, s in enumerate([1, 3, 5, 7, 9])}

#: Every fault process active; rates sized to yield a handful of events
#: over a 1200 s trace.
CHURN = ChaosProfile(
    mttf=Seconds(500.0),
    mttr=Seconds(90.0),
    decommission_every=Seconds(700.0),
    commission_every=Seconds(600.0),
    delegate_crash_every=Seconds(900.0),
    min_live=2,
    max_commissions=3,
)


def _trace(seed=3):
    return generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=1500, duration=1200.0,
                        request_cost=0.3, seed=seed)
    )


# ----------------------------------------------------------------------
# Injector properties
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_injector_is_deterministic_and_valid(seed):
    a = FaultInjector(SPEEDS, CHURN, seed=seed).generate(Seconds(1200.0))
    b = FaultInjector(SPEEDS, CHURN, seed=seed).generate(Seconds(1200.0))
    assert list(a) == list(b)
    a.validate(set(SPEEDS))
    # min_live is honoured throughout the replay.
    roster = MembershipRoster(SPEEDS)
    for event in a:
        apply_event(roster, event)
        assert roster.live_count >= CHURN.min_live


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    other=st.integers(min_value=0, max_value=10_000),
)
def test_injector_seed_sensitivity(seed, other):
    if seed == other:
        return
    a = FaultInjector(SPEEDS, CHURN, seed=seed).generate(Seconds(3600.0))
    b = FaultInjector(SPEEDS, CHURN, seed=other).generate(Seconds(3600.0))
    assert list(a) != list(b)


#: Profiles the min_live prefix property sweeps over: plain churn,
#: decommission-heavy churn, and the full gray-failure zoo (whose
#: slow-then-dead ramps end in FAIL events that must also respect the
#: floor).
PREFIX_PROFILES = {
    "churn": CHURN,
    "decom-heavy": ChaosProfile(
        mttf=Seconds(300.0),
        mttr=Seconds(200.0),
        decommission_every=Seconds(150.0),
        commission_every=Seconds(400.0),
        min_live=2,
        max_commissions=2,
    ),
    "limp-churn": LIMP_CHURN,
}


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    profile=st.sampled_from(sorted(PREFIX_PROFILES)),
)
def test_no_schedule_prefix_breaks_min_live(seed, profile):
    """Regression: the decommission guard was loop-invariant.

    ``generate`` filtered decommission candidates on ``roster.live_count
    > profile.min_live`` *inside* a comprehension over live servers — a
    condition that never changes across the comprehension, so it either
    admitted everyone or no one.  The hoisted guard must keep **every
    prefix** of every schedule at or above ``min_live``, including
    prefixes ending mid-ramp (slow-then-dead limps terminate in FAIL).
    """
    chosen = PREFIX_PROFILES[profile]
    schedule = FaultInjector(SPEEDS, chosen, seed=seed).generate(
        Seconds(2400.0)
    )
    roster = MembershipRoster(SPEEDS)
    for event in schedule:
        apply_event(roster, event)
        assert roster.live_count >= chosen.min_live


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_limp_injector_is_deterministic_and_valid(seed):
    a = FaultInjector(SPEEDS, LIMP_CHURN, seed=seed).generate(Seconds(2400.0))
    b = FaultInjector(SPEEDS, LIMP_CHURN, seed=seed).generate(Seconds(2400.0))
    assert list(a) == list(b)
    a.validate(set(SPEEDS))
    low, high = LIMP_CHURN.degrade_factor
    degrades = [e for e in a if e.kind is FaultKind.DEGRADE]
    for event in degrades:
        # Ramp steps halve below `low`, and coupling scales toward 1.0,
        # but every factor stays a genuine limp: inside (0, 1).
        assert 0.0 < event.factor < 1.0
    # Every RESTORE lands on a server a prior DEGRADE actually limped
    # (validate() above already replayed the lifecycle, so this is just
    # the structural half: restores never precede their degrade).
    seen_degraded = set()
    for event in a:
        if event.kind is FaultKind.DEGRADE:
            seen_degraded.add(event.server)
        elif event.kind is FaultKind.RESTORE:
            assert event.server in seen_degraded


def test_limp_profile_produces_gray_failures():
    """At least one seed yields both DEGRADE and RESTORE over the horizon
    (a structural smoke check that the limp process is wired at all)."""
    kinds = set()
    for seed in range(5):
        schedule = FaultInjector(SPEEDS, LIMP_CHURN, seed=seed).generate(
            Seconds(2400.0)
        )
        kinds |= {e.kind for e in schedule}
    assert FaultKind.DEGRADE in kinds
    assert FaultKind.RESTORE in kinds


def test_degradation_free_profile_is_bit_identical_to_before():
    """Switching the limp fields off reproduces the fail-stop schedule
    exactly: old profiles are byte-compatible with the extended injector."""
    import dataclasses

    limp_off = dataclasses.replace(
        LIMP_CHURN, degrade_mttd=None, slow_then_dead=0.0,
        couple_probability=0.0,
    )
    base = ChaosProfile(
        mttf=limp_off.mttf,
        mttr=limp_off.mttr,
        decommission_every=limp_off.decommission_every,
        commission_every=limp_off.commission_every,
        delegate_crash_every=limp_off.delegate_crash_every,
        min_live=limp_off.min_live,
        max_commissions=limp_off.max_commissions,
    )
    for seed in range(5):
        a = FaultInjector(SPEEDS, limp_off, seed=seed).generate(Seconds(2400.0))
        b = FaultInjector(SPEEDS, base, seed=seed).generate(Seconds(2400.0))
        assert list(a) == list(b)


# ----------------------------------------------------------------------
# Queueing stack
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_chaos_cluster_stack(seed):
    trace = _trace()
    faults = FaultInjector(SPEEDS, CHURN, seed=seed).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                           sample_window=60.0, seed=1)
    policy = ANUPolicy()

    checked = []

    def _on_record(record):
        if record.kind != "membership":
            return
        # The director just finished re-placing: ownership must be
        # unique and structurally sound, and new work must only target
        # live servers.
        sim.check_invariants()
        live = set(sim.roster.live())
        assert record.live == len(live)
        for fileset, owner in sim.planned_assignment().items():
            assert owner in sim.servers
            assert owner in live
        checked.append(record)

    sim = ClusterSimulation(
        config, policy, trace, faults, telemetry=CallbackSink(_on_record)
    )
    result = sim.run()

    # Every membership-changing event was checked mid-run.
    structural = [e for e in faults if e.kind is not FaultKind.DELEGATE_CRASH]
    assert len(checked) == len(faults)
    assert len(structural) <= len(checked)

    # No lost or duplicated requests, ever.
    assert result.total_requests == len(trace)
    assert sum(result.completed.values()) == len(trace)

    # Quiescence: the surviving placement satisfies the paper's rules.
    placement = policy.placement
    assert placement is not None
    placement.check_invariants()  # half occupancy + structural soundness
    assert set(placement.servers) == set(sim.roster.live())
    assert placement.interval.partitions >= 2 * (len(placement.servers) + 1)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_chaos_cluster_stack_with_limps(seed):
    """The queueing stack survives the full gray-failure zoo.

    SpeedChanged records must track roster degradation in lockstep with
    the harness's effective server speed, degraded servers stay live and
    owned, and request conservation still holds end to end.
    """
    trace = _trace()
    faults = FaultInjector(SPEEDS, LIMP_CHURN, seed=seed).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                           sample_window=60.0, seed=1)
    policy = ANUPolicy()
    speed_checks = []

    def _on_record(record):
        if record.kind == "speed":
            server = sim.servers[record.server]
            assert server.alive
            assert server.degradation == sim.roster.degradation_of(
                record.server
            )
            assert server.speed == server.base_speed * server.degradation
            assert record.effective_speed == server.speed
            speed_checks.append(record)
        elif record.kind == "membership":
            sim.check_invariants()
            live = set(sim.roster.live())
            for owner in sim.planned_assignment().values():
                assert owner in live

    sim = ClusterSimulation(
        config, policy, trace, faults, telemetry=CallbackSink(_on_record)
    )
    result = sim.run()
    gray = [e for e in faults
            if e.kind in (FaultKind.DEGRADE, FaultKind.RESTORE)]
    assert len(speed_checks) == len(gray)
    assert sum(result.completed.values()) == len(trace)
    assert policy.placement is not None
    policy.placement.check_invariants()


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    replication=st.sampled_from([1, 2, 3]),
)
def test_chaos_owner_set_routing(seed, replication):
    """Replicated ownership under chaos: after any fault-schedule prefix,
    every dispatched request targets a *currently-live* member of its
    file set's owner set (slot 0 is always the authoritative owner), the
    telemetry replica slot indexes that owner set, and request
    conservation holds at r in {1, 2, 3}.
    """
    trace = _trace()
    faults = FaultInjector(SPEEDS, CHURN, seed=seed).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                           sample_window=60.0, seed=1)
    policy = (ReplicatedPolicy(ANUPolicy(), replication)
              if replication > 1 else ANUPolicy())
    dispatched = []

    def _on_record(record):
        if record.kind == "dispatch":
            owners = sim.owner_sets()[record.fileset]
            assert 1 <= len(owners) <= replication
            assert len(owners) == len(set(owners))
            assert owners[0] == sim.filesets[record.fileset].owner
            # The routed target is a live owner-set member, and the
            # telemetry slot names exactly which replica took it.
            assert record.server in owners
            assert owners[record.replica] == record.server
            assert sim.roster.is_live(record.server)
            dispatched.append(record)
        elif record.kind == "membership":
            sim.check_invariants()
            live = set(sim.roster.live())
            # After re-placement every *planned* slot-0 owner is live
            # (actual ownership may lag while a move is in flight), and
            # the refreshed replica plane only names live servers — so a
            # crash orphans a request only when ALL owners are down.
            for owner in sim.planned_assignment().values():
                assert owner in live
            for replicas in sim._replica_owners.values():
                assert set(replicas) <= live

    sim = ClusterSimulation(
        config, policy, trace, faults,
        telemetry=CallbackSink(_on_record),
        router=make_router("jsq2"), replication=replication,
    )
    result = sim.run()

    # Request conservation: nothing lost, nothing duplicated.
    assert result.total_requests == len(trace)
    assert sum(result.completed.values()) == len(trace)
    assert len(dispatched) >= len(trace)


# ----------------------------------------------------------------------
# Semantic (fs) stack
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_chaos_fs_stack(seed):
    roots = {f"fs{i}": f"/p{i}" for i in range(6)}
    servers = {f"server{i}": 1.0 for i in range(4)}
    faults = FaultInjector(servers, CHURN, seed=seed).generate(Seconds(1200.0))

    cluster = MetadataCluster(sorted(servers), roots)
    client = FileSystemClient(cluster, "chaos-client")
    durable = []
    for i, root in enumerate(roots.values()):
        client.mkdir(f"{root}/dir")
        client.create(f"{root}/dir/file{i}")
        durable.append(f"{root}/dir/file{i}")
    cluster.checkpoint()  # flushed: must survive any crash sequence

    for event in faults:
        cluster.director.apply(event, now=event.time)
        # Ownership, services, placement, and roster agree after every
        # single membership change ...
        cluster.check_consistency()
        # ... and the ANU region map keeps the paper's invariants.
        cluster.placement.check_invariants()
        n = len(cluster.services)
        assert cluster.placement.interval.partitions >= 2 * (n + 1)

    # Flushed data survived the entire chaos sequence.
    for path in durable:
        assert client.stat(path) is not None


# ----------------------------------------------------------------------
# Protocol stack
# ----------------------------------------------------------------------
FAST = ProtocolConfig(
    heartbeat_interval=0.5,
    heartbeat_timeout=1.6,
    election_timeout=0.3,
    report_timeout=0.3,
    tuning_interval=5.0,
)

#: Commission churn limited to recovering drained nodes (fresh protocol
#: nodes would get digit-derived peer priorities that clash with their
#: assigned ones), and no stochastic delegate crashes: the protocol stack
#: realizes DELEGATE_CRASH by downing the *actual* delegate node, which
#: the injector's roster model cannot predict — later events in a
#: pre-validated schedule could then target an already-dead server.  The
#: delegate path is instead exercised explicitly at the end of the test.
NODE_CHURN = ChaosProfile(
    mttf=Seconds(60.0),
    mttr=Seconds(15.0),
    decommission_every=Seconds(90.0),
    commission_every=Seconds(70.0),
    delegate_crash_every=None,
    min_live=3,
    max_commissions=0,
)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_chaos_proto_stack(seed):
    n = 5
    names = {f"node{i:02d}": 1.0 for i in range(n)}
    faults = FaultInjector(names, NODE_CHURN, seed=seed).generate(
        Seconds(120.0)
    )
    sink = MemorySink()
    cp = ControlPlane(n, seed=seed, protocol_config=FAST, telemetry=sink)
    cp.start()
    for event in faults:
        cp.run_until(float(event.time))
        cp.apply_fault(event)
        assert len(cp.live_nodes) >= 1
        assert set(cp.live_nodes) == set(cp.roster.live())
    end = float(faults.events[-1].time) if len(faults) else 0.0
    cp.run_until(end + 15.0)

    # The control plane healed: live nodes agree on one delegate and on
    # the replicated share map.
    assert len(cp.live_nodes) >= NODE_CHURN.min_live
    victim = cp.current_delegate()
    assert victim is not None and victim in cp.live_nodes
    assert cp.shares_agree()

    # Finally kill the agreed delegate; the bully election elects a
    # replacement and the roster records the physical crash.
    cp.apply_fault(
        FaultEvent(Seconds(cp.engine.now), FaultKind.DELEGATE_CRASH, "*")
    )
    assert not cp.roster.is_live(victim)
    cp.run_until(cp.engine.now + 15.0)
    successor = cp.current_delegate()
    assert successor is not None and successor != victim
    assert successor in cp.live_nodes
    assert cp.shares_agree()
    # Telemetry saw one fault record per applied event.
    assert len(sink.of_kind("fault")) == len(faults) + 1
