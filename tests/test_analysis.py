"""Tests for the latency-series analysis helpers."""

import numpy as np
import pytest

from repro.metrics.analysis import (
    Spike,
    convergence_time,
    find_spikes,
    phase_means,
    settled_fraction,
    worst_per_window,
)
from repro.metrics.latency import LatencySeries


def make_series(data: dict[str, list[float]],
                counts: dict[str, list[float]] | None = None,
                window: float = 60.0) -> LatencySeries:
    n = len(next(iter(data.values())))
    return LatencySeries(
        window=window,
        times=np.arange(n) * window,
        mean_latency={k: np.array(v, dtype=float) for k, v in data.items()},
        counts={
            k: np.array((counts or {}).get(k, [1.0] * n), dtype=float)
            for k in data
        },
    )


def test_worst_per_window():
    s = make_series({"a": [1, 0, 3], "b": [2, 1, 0]})
    np.testing.assert_allclose(worst_per_window(s), [2, 1, 3])


def test_convergence_time_found():
    s = make_series({"a": [0.9, 0.5, 0.1, 0.05, 0.08, 0.04]})
    t = convergence_time(s, threshold=0.2, stable_windows=3)
    assert t == 120.0  # windows 2,3,4 are the first stable run


def test_convergence_time_never():
    s = make_series({"a": [0.9, 0.1, 0.9, 0.1, 0.9]})
    assert convergence_time(s, threshold=0.2, stable_windows=2) is None


def test_convergence_requires_consecutive_windows():
    s = make_series({"a": [0.1, 0.9, 0.1, 0.1]})
    assert convergence_time(s, threshold=0.2, stable_windows=2) == 120.0


def test_convergence_validation():
    s = make_series({"a": [0.1]})
    with pytest.raises(ValueError):
        convergence_time(s, 0.1, stable_windows=0)


def test_find_spikes_basic():
    s = make_series({"a": [0.0, 0.5, 0.7, 0.0, 0.6, 0.0]})
    spikes = find_spikes(s, "a", threshold=0.4)
    assert spikes == [
        Spike(server="a", start=60.0, end=180.0, peak=0.7),
        Spike(server="a", start=240.0, end=300.0, peak=0.6),
    ]


def test_find_spikes_open_ended():
    s = make_series({"a": [0.0, 0.9]})
    spikes = find_spikes(s, "a", threshold=0.4)
    assert len(spikes) == 1
    assert spikes[0].end == 120.0  # extends to series end + window


def test_find_spikes_none():
    s = make_series({"a": [0.1, 0.2]})
    assert find_spikes(s, "a", threshold=0.5) == []


def test_phase_means_weighted():
    s = make_series(
        {"a": [0.1, 0.3, 0.5, 0.7]},
        counts={"a": [1, 3, 0, 2]},
    )
    phases = phase_means(s, [0.0, 120.0, 240.0])
    # Phase 1: (0.1*1 + 0.3*3)/4 = 0.25; phase 2: (0.5*0 + 0.7*2)/2 = 0.7.
    assert phases[0]["a"] == pytest.approx(0.25)
    assert phases[1]["a"] == pytest.approx(0.7)


def test_phase_means_empty_phase_is_zero():
    s = make_series({"a": [0.5]}, counts={"a": [0]})
    assert phase_means(s, [0.0, 60.0])[0]["a"] == 0.0


def test_phase_means_validation():
    s = make_series({"a": [0.1]})
    with pytest.raises(ValueError):
        phase_means(s, [10.0])
    with pytest.raises(ValueError):
        phase_means(s, [10.0, 5.0])


def test_settled_fraction():
    s = make_series({"a": [0.1, 0.9, 0.1, 0.1]})
    assert settled_fraction(s, threshold=0.5) == pytest.approx(0.75)


def test_analysis_on_real_run():
    """Integration: ANU's convergence detected on an actual simulation."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement import ANUPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=10_000, duration=2_000.0,
                        seed=3)
    )
    cfg = ClusterConfig(servers=paper_servers(), seed=0)
    res = ClusterSimulation(cfg, ANUPolicy(), trace).run()
    t = convergence_time(res.series, threshold=0.2, stable_windows=5)
    assert t is not None
    assert t < 1_200.0  # converged in the first ~10 tuning rounds
    assert settled_fraction(res.series, 0.2) > 0.5


def test_count_idle_hot_cycles():
    from repro.metrics import count_idle_hot_cycles

    s = make_series({"a": [0.0, 0.6, 0.0, 0.7, 0.3, 0.0, 0.8]})
    assert count_idle_hot_cycles(s, "a", hot=0.5) == 3
    # Without returning to idle, repeated hot windows count once.
    s2 = make_series({"a": [0.0, 0.6, 0.6, 0.6]})
    assert count_idle_hot_cycles(s2, "a", hot=0.5) == 1
    with pytest.raises(ValueError):
        count_idle_hot_cycles(s, "a", hot=0.0)
