"""Tests for the capacity planner and trace thinning."""

import numpy as np
import pytest

from repro.experiments.planner import (
    Candidate,
    CandidateResult,
    LatencyObjective,
    PlanReport,
    evaluate_candidate,
    plan_capacity,
)
from repro.workloads import SyntheticConfig, generate_synthetic


def trace(n_requests=8000, duration=1600.0, cost=0.35, seed=3):
    return generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=n_requests,
                        duration=duration, request_cost=cost, seed=seed)
    )


SMALL = Candidate("small", {"a": 1.0, "b": 1.0})
MEDIUM = Candidate("medium", {"a": 3.0, "b": 3.0, "c": 3.0})
BIG = Candidate("big", {f"s{i}": 9.0 for i in range(4)})


# ----------------------------------------------------------------------
# Trace.thin
# ----------------------------------------------------------------------
def test_thin_keeps_about_fraction():
    t = trace()
    half = t.thin(0.5, seed=1)
    assert len(half) == pytest.approx(len(t) * 0.5, rel=0.1)
    assert half.duration == t.duration
    assert np.all(np.diff(half.times) >= 0)


def test_thin_preserves_fileset_rate_ratios():
    t = trace(n_requests=40_000)
    half = t.thin(0.5, seed=2)
    full_counts = t.counts_by_fileset()
    half_counts = half.counts_by_fileset()
    hot = max(full_counts, key=full_counts.get)
    assert half_counts[hot] == pytest.approx(full_counts[hot] * 0.5, rel=0.15)


def test_thin_identity_and_validation():
    t = trace(n_requests=100)
    same = t.thin(1.0)
    assert len(same) == 100
    with pytest.raises(ValueError):
        t.thin(0.0)
    with pytest.raises(ValueError):
        t.thin(1.5)


# ----------------------------------------------------------------------
# Objective / candidate plumbing
# ----------------------------------------------------------------------
def test_objective_validation():
    with pytest.raises(ValueError):
        LatencyObjective(percentile=0.0)
    with pytest.raises(ValueError):
        LatencyObjective(bound=0.0)
    with pytest.raises(ValueError):
        LatencyObjective(steady_tail_fraction=0.0)


def test_candidate_cost_defaults_to_aggregate_speed():
    assert SMALL.effective_cost == 2.0
    assert Candidate("x", {"a": 1.0}, cost=99.0).effective_cost == 99.0


def test_evaluate_candidate_requires_servers():
    with pytest.raises(ValueError):
        evaluate_candidate(Candidate("empty", {}), trace(n_requests=10),
                           LatencyObjective())


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def test_bigger_cluster_measures_lower_latency():
    t = trace()
    obj = LatencyObjective(percentile=95.0, bound=0.05)
    small = evaluate_candidate(SMALL, t, obj)
    big = evaluate_candidate(BIG, t, obj)
    assert big.measured < small.measured


def test_plan_recommends_cheapest_passing():
    t = trace()
    report = plan_capacity([BIG, MEDIUM, SMALL], t,
                           LatencyObjective(percentile=95.0, bound=0.08))
    assert isinstance(report, PlanReport)
    rec = report.recommended
    assert rec is not None
    passing = [r for r in report.results if r.passed]
    assert rec.candidate.effective_cost == min(
        r.candidate.effective_cost for r in passing
    )
    # The big cluster certainly passes a loose bound.
    assert any(r.candidate.name == "big" and r.passed for r in report.results)


def test_plan_none_when_impossible():
    t = trace(cost=0.8)  # heavy ops
    report = plan_capacity(
        [SMALL],
        t,
        LatencyObjective(percentile=99.0, bound=0.0001),
    )
    assert report.recommended is None
    assert "none" in report.table()


def test_plan_table_renders():
    t = trace(n_requests=2000, duration=600.0)
    report = plan_capacity([SMALL, BIG], t,
                           LatencyObjective(bound=0.1))
    table = report.table()
    assert "candidate" in table and "PASS" in table or "fail" in table
    assert "recommended:" in table


def test_thinned_planning_preserves_ordering():
    t = trace(n_requests=20_000)
    obj = LatencyObjective(bound=0.05)
    full = plan_capacity([SMALL, BIG], t, obj)
    thinned = plan_capacity([SMALL, BIG], t, obj, thin_to=0.3)

    def measured(report, name):
        return next(r.measured for r in report.results
                    if r.candidate.name == name)

    assert measured(full, "big") < measured(full, "small")
    assert measured(thinned, "big") < measured(thinned, "small")
