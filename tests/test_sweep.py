"""The parallel sweep engine: plans, executors, merges, and resume.

The engine's contract is byte-identity: the merged output of a sweep is
a pure function of its plan, regardless of executor kind, worker count,
completion order, or whether the run was interrupted and resumed.  The
process-executor tests spawn real worker processes (spawn start method,
the strictest), so they double as an integration test of the
``@worker_entry`` / ``register_process_cache`` contract.
"""

from __future__ import annotations

import json

import pytest

from repro.core.interval import MappedInterval
from repro.lint.flow.cache import version_token
from repro.sweep import (
    Cell,
    GridSpec,
    PlanError,
    SweepPlan,
    cell_id_for,
    clear_process_caches,
    register_process_cache,
    run_sweep,
)
from repro.sweep.worker import run_cell

#: Small-but-real grid: 2 policies x 3 seeds at the quick cell size.
QUICK = {"n_filesets": 12, "n_requests": 60, "duration": 120.0,
         "tuning_interval": 30.0}


def quick_spec(policies=("anu", "random"), seeds=(0, 1, 2)) -> GridSpec:
    return GridSpec(
        axes={"policy": list(policies)}, seeds=list(seeds), base=dict(QUICK)
    )


# ----------------------------------------------------------------------
# Cell ids and plans
# ----------------------------------------------------------------------
def test_cell_id_ignores_param_insertion_order():
    a = cell_id_for(7, {"policy": "anu", "n_requests": 60})
    b = cell_id_for(7, {"n_requests": 60, "policy": "anu"})
    assert a == b
    assert len(a) == 16


def test_cell_id_distinguishes_seed_and_params():
    base = cell_id_for(7, {"policy": "anu"})
    assert cell_id_for(8, {"policy": "anu"}) != base
    assert cell_id_for(7, {"policy": "random"}) != base


def test_plan_is_stable_under_axis_reordering():
    one = GridSpec(
        axes={"policy": ["anu", "random"], "alpha": [3.0, 4.0]},
        seeds=[0, 1],
    ).build_plan()
    two = GridSpec(
        axes={"alpha": [4.0, 3.0], "policy": ["random", "anu"]},
        seeds=[1, 0],
    ).build_plan()
    assert one.digest() == two.digest()
    assert [c.cell_id for c in one.cells] == [c.cell_id for c in two.cells]


def test_plan_cells_are_sorted_and_unique():
    plan = quick_spec().build_plan()
    ids = [c.cell_id for c in plan.cells]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids) == 6


def test_plan_round_trips_through_json():
    plan = quick_spec().build_plan()
    again = SweepPlan.from_json(plan.to_json())
    assert again == plan
    assert again.digest() == plan.digest()


def test_plan_json_digest_guard_rejects_tampering():
    plan = quick_spec().build_plan()
    doc = json.loads(plan.to_json())
    doc["cells"][0]["seed"] += 1
    with pytest.raises(PlanError):
        SweepPlan.from_json(json.dumps(doc))


def test_grid_rejects_non_scalar_axis_values_and_duplicate_seeds():
    with pytest.raises(PlanError):
        GridSpec(axes={"policy": [object()]}, seeds=[0])
    with pytest.raises(PlanError):
        GridSpec(axes={"policy": ["anu"]}, seeds=[0, 0])


def test_cell_rejects_id_mismatch():
    good = Cell.build(seed=1, params={"policy": "anu"})
    with pytest.raises(PlanError):
        Cell(cell_id="0" * 16, seed=good.seed, params=good.params)


# ----------------------------------------------------------------------
# Byte-identity across executors, worker counts, and resume
# ----------------------------------------------------------------------
def _merged_bytes(outdir):
    return (outdir / "merged.jsonl").read_bytes()


def test_serial_sweep_is_deterministic(tmp_path):
    plan = quick_spec().build_plan()
    one = run_sweep(plan, tmp_path / "one", executor="serial")
    two = run_sweep(plan, tmp_path / "two", executor="serial")
    assert one.complete and two.complete
    assert one.merged_digest == two.merged_digest
    assert _merged_bytes(tmp_path / "one") == _merged_bytes(tmp_path / "two")


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_process_executor_matches_serial_at_any_worker_count(tmp_path, jobs):
    plan = quick_spec().build_plan()
    serial = run_sweep(plan, tmp_path / "serial", executor="serial")
    result = run_sweep(
        plan, tmp_path / f"process{jobs}", executor="process", jobs=jobs
    )
    assert result.complete
    assert result.merged_digest == serial.merged_digest
    assert _merged_bytes(tmp_path / f"process{jobs}") == _merged_bytes(
        tmp_path / "serial"
    )


def test_futures_executor_matches_serial(tmp_path):
    plan = quick_spec(seeds=(0, 1)).build_plan()
    serial = run_sweep(plan, tmp_path / "serial", executor="serial")
    futures = run_sweep(
        plan, tmp_path / "futures", executor="futures", jobs=2
    )
    assert futures.complete
    assert futures.merged_digest == serial.merged_digest


def test_resume_from_partial_is_bit_identical(tmp_path):
    plan = quick_spec().build_plan()
    whole = run_sweep(plan, tmp_path / "whole", executor="serial")

    partial = run_sweep(
        plan, tmp_path / "resumed", executor="serial", max_cells=2
    )
    assert not partial.complete and partial.ran == 2
    finished = run_sweep(
        plan, tmp_path / "resumed", executor="process", jobs=2
    )
    assert finished.complete
    assert finished.resumed == 2 and finished.ran == len(plan) - 2
    assert finished.merged_digest == whole.merged_digest
    assert _merged_bytes(tmp_path / "resumed") == _merged_bytes(
        tmp_path / "whole"
    )


def test_resume_rejects_a_different_plan(tmp_path):
    outdir = tmp_path / "out"
    run_sweep(quick_spec().build_plan(), outdir, max_cells=1)
    other = quick_spec(seeds=(5, 6)).build_plan()
    with pytest.raises(PlanError):
        run_sweep(other, outdir)


def test_manifest_records_per_cell_digests(tmp_path):
    plan = quick_spec(policies=("anu",), seeds=(0, 1)).build_plan()
    result = run_sweep(plan, tmp_path / "out", executor="serial")
    manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
    assert manifest["merged_digest"] == result.merged_digest
    assert manifest["plan_digest"] == plan.digest()
    assert sorted(manifest["cell_digests"]) == [
        c.cell_id for c in plan.cells
    ]
    assert all(manifest["cell_digests"].values())


# ----------------------------------------------------------------------
# The worker and the process-cache contract
# ----------------------------------------------------------------------
def test_run_cell_is_deterministic_and_validates_params():
    payload = Cell.build(
        seed=3, params={"policy": "anu", **QUICK}
    ).payload()
    assert run_cell(payload) == run_cell(dict(payload))
    bad = Cell.build(seed=3, params={"policy": "anu", "bogus": 1}).payload()
    with pytest.raises(ValueError):
        run_cell(bad)


def test_clear_process_caches_resets_interval_segment_cache():
    # The latent fork hazard: a warm segments() cache inherited by a
    # forked child must be droppable at worker start.  The WeakSet hook
    # registered by repro.core.interval clears every live interval.
    interval = MappedInterval(["s0", "s1", "s2"])
    for server in interval.servers:
        interval.segments(server)
    assert interval._segments_cache
    clear_process_caches()
    assert not interval._segments_cache
    assert interval._segments_gen == -1
    for server in interval.servers:
        assert interval.segments(server) == interval._build_segments(server)


def test_clear_process_caches_resets_lint_version_token():
    version_token()
    assert version_token.cache_info().currsize == 1
    clear_process_caches()
    assert version_token.cache_info().currsize == 0


def test_register_process_cache_is_idempotent_and_decoratable():
    from repro.sweep import api

    calls = []

    def hook():
        calls.append(1)

    before = len(api._HOOKS)
    assert register_process_cache(hook) is hook
    register_process_cache(hook)  # second registration is a no-op
    try:
        assert len(api._HOOKS) == before + 1
        clear_process_caches()
        assert calls == [1]
    finally:
        api._HOOKS.remove(hook)
