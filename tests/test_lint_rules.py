"""Per-rule fixtures for ``repro-lint``: each rule fires on a known-bad
snippet and stays silent on the matching good one.

Fixtures are linted in-memory via :func:`repro.lint.lint_source` with a
synthetic path, because most rules scope themselves by repository layer
(production code vs tests, ``repro.core`` vs elsewhere, the ``sim/rng.py``
exemption).  The scoping itself is part of what is tested.
"""

import textwrap

import pytest

from repro.lint import REGISTRY, all_rules, lint_source
from repro.lint.cli import main

SRC = "src/repro/example.py"
CORE = "src/repro/core/example.py"
TEST = "tests/test_example.py"
RNG = "src/repro/sim/rng.py"


def ids(source: str, path: str = SRC) -> list[str]:
    """Rule IDs firing on ``source`` linted as if it lived at ``path``."""
    return [d.rule_id for d in lint_source(textwrap.dedent(source), path=path)]


# ----------------------------------------------------------------------
# Registry shape
# ----------------------------------------------------------------------
def test_registry_has_at_least_eight_documented_rules():
    rules = all_rules()
    assert len(rules) >= 8
    for rule in rules:
        assert rule.id.startswith("RPL") and len(rule.id) == 6
        assert rule.title
        assert rule.hint
        assert (rule.__doc__ or "").strip(), f"{rule.id} undocumented"


def test_rule_ids_are_unique_and_sorted():
    listed = [rule.id for rule in all_rules()]
    assert listed == sorted(set(listed))


# ----------------------------------------------------------------------
# RPL001 — wall clock / global RNG
# ----------------------------------------------------------------------
def test_rpl001_fires_on_random_import_and_wall_clock():
    bad = """
        import random
        import time

        def jitter():
            return random.random() + time.time()
    """
    found = ids(bad)
    assert found.count("RPL001") >= 2  # the import and the time.time() call


def test_rpl001_fires_on_datetime_now_and_urandom():
    assert "RPL001" in ids("import os\ntoken = os.urandom(8)\n")
    assert "RPL001" in ids(
        "from datetime import datetime\nstamp = datetime.now()\n"
    )


def test_rpl001_silent_on_good_code_and_outside_package():
    good = """
        from ..sim.rng import StreamFactory

        def draws(seed):
            return StreamFactory(seed).stream("component").random()
    """
    assert "RPL001" not in ids(good)
    # Tests and benchmarks are free to use the stdlib clock.
    assert "RPL001" not in ids("import time\nt0 = time.time()\n", path=TEST)
    # The RNG module itself is the sanctioned home.
    assert "RPL001" not in ids("import random\n", path=RNG)


# ----------------------------------------------------------------------
# RPL002 — np.random outside StreamFactory
# ----------------------------------------------------------------------
def test_rpl002_fires_on_default_rng_and_legacy_api():
    assert "RPL002" in ids(
        "import numpy as np\nrng = np.random.default_rng(0)\n"
    )
    assert "RPL002" in ids("import numpy as np\nx = np.random.random()\n")
    assert "RPL002" in ids(
        "import numpy\nrng = numpy.random.Generator(numpy.random.PCG64(1))\n"
    )


def test_rpl002_silent_on_streams_annotations_and_rng_module():
    good = """
        import numpy as np

        def sample(rng: np.random.Generator) -> float:
            return float(rng.exponential(1.0))
    """
    assert "RPL002" not in ids(good)  # annotation is not a call
    assert "RPL002" not in ids(
        "import numpy as np\nrng = np.random.default_rng(0)\n", path=RNG
    )


# ----------------------------------------------------------------------
# RPL003 — unordered iteration
# ----------------------------------------------------------------------
def test_rpl003_fires_on_set_iteration_forms():
    assert "RPL003" in ids("for name in {'a', 'b'}:\n    print(name)\n")
    assert "RPL003" in ids("names = list(set(['b', 'a']))\n")
    assert "RPL003" in ids("pairs = [n for n in set(words)]\n")
    assert "RPL003" in ids("for n in alive.intersection(owners):\n    pass\n")


def test_rpl003_silent_when_sorted():
    assert "RPL003" not in ids("for name in sorted({'a', 'b'}):\n    pass\n")
    assert "RPL003" not in ids("names = sorted(set(['b', 'a']))\n")
    assert "RPL003" not in ids("for name in ['a', 'b']:\n    pass\n")


# ----------------------------------------------------------------------
# RPL004 — float equality
# ----------------------------------------------------------------------
def test_rpl004_fires_on_float_literal_cast_and_division():
    assert "RPL004" in ids("ok = x == 0.5\n")
    assert "RPL004" in ids("ok = x != float(y)\n")
    assert "RPL004" in ids("ok = a / b == c\n")


def test_rpl004_allows_sentinels_inequalities_and_tests():
    assert "RPL004" not in ids("ok = fraction == 1.0\n")
    assert "RPL004" not in ids("ok = x == 0\n")
    assert "RPL004" not in ids("ok = x <= 0.5\n")
    assert "RPL004" not in ids("assert share == 0.25\n", path=TEST)


# ----------------------------------------------------------------------
# RPL005 — int() of true division
# ----------------------------------------------------------------------
def test_rpl005_fires_on_int_of_division():
    assert "RPL005" in ids("idx = int(tick / psize)\n")
    assert "RPL005" in ids("idx = int(tick / psize)\n", path=TEST)


def test_rpl005_silent_on_floor_division():
    assert "RPL005" not in ids("idx = tick // psize\n")
    assert "RPL005" not in ids("idx = int(x)\n")


# ----------------------------------------------------------------------
# RPL006 — float cast on ticks (core only)
# ----------------------------------------------------------------------
def test_rpl006_fires_on_tick_cast_in_core():
    assert "RPL006" in ids("x = float(ticks)\n", path=CORE)
    assert "RPL006" in ids("x = float(self.partition_ticks)\n", path=CORE)
    assert "RPL006" in ids("x = float(RESOLUTION)\n", path=CORE)


def test_rpl006_scoped_to_core():
    assert "RPL006" not in ids("x = float(ticks)\n")  # not in core/
    assert "RPL006" not in ids("x = float(mean)\n", path=CORE)


# ----------------------------------------------------------------------
# RPL007 — mutable default argument
# ----------------------------------------------------------------------
def test_rpl007_fires_on_mutable_defaults():
    assert "RPL007" in ids("def f(buffer=[]):\n    return buffer\n")
    assert "RPL007" in ids("def f(*, cache={}):\n    return cache\n")
    assert "RPL007" in ids("def f(seen=set()):\n    return seen\n")


def test_rpl007_silent_on_safe_defaults():
    assert "RPL007" not in ids("def f(buffer=None):\n    return buffer or []\n")
    assert "RPL007" not in ids("def f(names=()):\n    return names\n")


# ----------------------------------------------------------------------
# RPL008 — bare except
# ----------------------------------------------------------------------
def test_rpl008_fires_on_bare_except():
    bad = """
        try:
            work()
        except:
            pass
    """
    assert "RPL008" in ids(bad)


def test_rpl008_silent_on_typed_except():
    good = """
        try:
            work()
        except ValueError:
            pass
    """
    assert "RPL008" not in ids(good)


# ----------------------------------------------------------------------
# RPL009 — global statements
# ----------------------------------------------------------------------
def test_rpl009_fires_in_package_only():
    bad = "COUNT = 0\n\ndef bump():\n    global COUNT\n    COUNT += 1\n"
    assert "RPL009" in ids(bad)
    assert "RPL009" not in ids(bad, path=TEST)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_line_suppression_silences_one_line():
    src = (
        "a = int(x / y)  # repro-lint: disable=RPL005\n"
        "b = int(x / y)\n"
    )
    found = ids(src)
    assert found.count("RPL005") == 1


def test_file_suppression_and_disable_all():
    src = "# repro-lint: disable-file=RPL005\na = int(x / y)\nb = int(x / y)\n"
    assert "RPL005" not in ids(src)
    assert ids("a = int(x / y)  # repro-lint: disable=all\n") == []


def test_suppression_is_rule_specific():
    src = "def f(xs=[]):\n    return int(a / b)  # repro-lint: disable=RPL005\n"
    found = ids(src)
    assert "RPL005" not in found
    assert "RPL007" in found


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
    assert len(lines) >= 8
    assert all(line.startswith("RPL") for line in lines)


def test_cli_explain(capsys):
    assert main(["--explain", "rpl001"]) == 0
    out = capsys.readouterr().out
    assert "RPL001" in out and "autofix hint" in out
    assert main(["--explain", "RPL999"]) == 2


def test_cli_exit_codes_on_files(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    good = tmp_path / "good.py"
    good.write_text("def f(xs=None):\n    return xs or []\n")
    assert main([str(bad)]) == 1
    assert "RPL007" in capsys.readouterr().out
    assert main([str(good)]) == 0


def test_cli_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    try:\n        pass\n    except:\n        pass\n")
    assert main([str(bad), "--select", "RPL008"]) == 1
    out = capsys.readouterr().out
    assert "RPL008" in out and "RPL007" not in out
    assert main(["--select", "NOPE", str(bad)]) == 2


def test_cli_reports_syntax_error(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken)]) == 2


@pytest.mark.parametrize("rule_id", sorted(REGISTRY))
def test_every_rule_reachable_via_select(rule_id, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean), "--select", rule_id]) == 0
