"""Unit and property tests for the namespace tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.namespace import (
    AlreadyExists,
    Namespace,
    NotADirectory,
    NotEmpty,
    NotFound,
    FSError,
)


def make() -> Namespace:
    ns = Namespace("fs0")
    ns.mkdir("/src")
    ns.mkdir("/src/lib")
    ns.create("/src/main.py")
    ns.create("/src/lib/util.py")
    return ns


def test_mkdir_create_stat():
    ns = make()
    assert ns.stat("/src/main.py").size == 0
    assert ns.readdir("/src") == ["lib", "main.py"]
    assert ns.readdir("/") == ["src"]


def test_exists():
    ns = make()
    assert ns.exists("/src/lib/util.py")
    assert not ns.exists("/src/missing")


def test_duplicate_create_rejected():
    ns = make()
    with pytest.raises(AlreadyExists):
        ns.create("/src/main.py")
    with pytest.raises(AlreadyExists):
        ns.mkdir("/src")


def test_missing_parent_rejected():
    ns = make()
    with pytest.raises(NotFound):
        ns.create("/nope/file")


def test_file_as_directory_rejected():
    ns = make()
    with pytest.raises(NotADirectory):
        ns.create("/src/main.py/child")
    with pytest.raises(NotADirectory):
        ns.readdir("/src/main.py")


def test_setattr():
    ns = make()
    attrs = ns.setattr("/src/main.py", size=1024, mode=0o600, now=5.0)
    assert attrs.size == 1024
    assert attrs.mode == 0o600
    assert attrs.mtime == 5.0
    with pytest.raises(FSError):
        ns.setattr("/src/main.py", nonsense=1)


def test_unlink_and_rmdir():
    ns = make()
    ns.unlink("/src/lib/util.py")
    assert not ns.exists("/src/lib/util.py")
    ns.rmdir("/src/lib")
    assert ns.readdir("/src") == ["main.py"]


def test_unlink_directory_rejected():
    ns = make()
    with pytest.raises(FSError):
        ns.unlink("/src/lib")


def test_rmdir_nonempty_rejected():
    ns = make()
    with pytest.raises(NotEmpty):
        ns.rmdir("/src")


def test_rmdir_file_rejected():
    ns = make()
    with pytest.raises(NotADirectory):
        ns.rmdir("/src/main.py")


def test_rename_file_and_dir():
    ns = make()
    ns.rename("/src/main.py", "/src/app.py")
    assert ns.exists("/src/app.py")
    assert not ns.exists("/src/main.py")
    ns.rename("/src/lib", "/lib2")
    assert ns.exists("/lib2/util.py")


def test_rename_into_self_rejected():
    ns = make()
    with pytest.raises(FSError):
        ns.rename("/src", "/src/lib/inner")


def test_rename_to_existing_rejected():
    ns = make()
    ns.create("/src/other.py")
    with pytest.raises(AlreadyExists):
        ns.rename("/src/main.py", "/src/other.py")


def test_generation_bumps_on_mutation_only():
    ns = make()
    g = ns.generation
    ns.stat("/src/main.py")
    ns.readdir("/src")
    assert ns.generation == g
    ns.create("/src/new.py")
    assert ns.generation == g + 1


def test_walk_and_count():
    ns = make()
    walked = dict(ns.walk())
    assert set(walked) == {"/", "/src", "/src/lib", "/src/main.py",
                           "/src/lib/util.py"}
    assert ns.count_nodes() == 5


def test_image_round_trip():
    ns = make()
    ns.setattr("/src/main.py", size=42)
    image = ns.to_image()
    restored = Namespace.from_image(image)
    assert restored.fileset == "fs0"
    assert restored.generation == ns.generation
    assert restored.stat("/src/main.py").size == 42
    assert dict(restored.walk()).keys() == dict(ns.walk()).keys()
    # Inodes preserved.
    assert restored._resolve("/src/main.py").inode == ns._resolve("/src/main.py").inode


_names = st.sampled_from([f"n{i}" for i in range(6)])


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_random_operation_sequences_keep_tree_consistent(data):
    """Apply random valid mutations; the tree stays serializable and every
    created path remains resolvable until removed."""
    ns = Namespace("prop")
    dirs = ["/"]
    files: list[str] = []
    for _ in range(data.draw(st.integers(1, 25))):
        action = data.draw(st.sampled_from(["mkdir", "create", "unlink", "rename"]))
        if action == "mkdir":
            base = data.draw(st.sampled_from(dirs))
            name = data.draw(_names)
            path = (base if base != "/" else "") + "/" + name
            if not ns.exists(path):
                ns.mkdir(path)
                dirs.append(path)
        elif action == "create":
            base = data.draw(st.sampled_from(dirs))
            name = data.draw(_names) + ".f"
            path = (base if base != "/" else "") + "/" + name
            if not ns.exists(path):
                ns.create(path)
                files.append(path)
        elif action == "unlink" and files:
            path = data.draw(st.sampled_from(files))
            if ns.exists(path):
                ns.unlink(path)
            files.remove(path)
        elif action == "rename" and files:
            src = data.draw(st.sampled_from(files))
            if not ns.exists(src):
                continue
            dst = src + "x"
            if not ns.exists(dst):
                ns.rename(src, dst)
                files.remove(src)
                files.append(dst)
        # Invariants: all tracked files exist; image round-trips.
        for f in files:
            assert ns.exists(f)
        restored = Namespace.from_image(ns.to_image())
        assert restored.count_nodes() == ns.count_nodes()
