"""Unit tests for assignment diffing and movement accounting."""

import pytest

from repro.core.movement import MovementLedger, diff_assignment


def test_diff_identical_assignments():
    a = {"f1": "s1", "f2": "s2"}
    diff = diff_assignment(a, dict(a))
    assert diff.moved == 0
    assert diff.stayed == 2
    assert diff.moved_fraction == 0.0


def test_diff_counts_moves():
    old = {"f1": "s1", "f2": "s2", "f3": "s1"}
    new = {"f1": "s2", "f2": "s2", "f3": "s3"}
    diff = diff_assignment(old, new)
    assert diff.moved == 2
    assert diff.stayed == 1
    assert {m.fileset for m in diff.moves} == {"f1", "f3"}
    move = next(m for m in diff.moves if m.fileset == "f1")
    assert move.source == "s1" and move.destination == "s2"


def test_diff_new_fileset_counts_as_fresh_placement():
    diff = diff_assignment({}, {"f1": "s1"})
    assert diff.moved == 1
    assert diff.moves[0].source is None


def test_diff_deleted_fileset_ignored():
    diff = diff_assignment({"gone": "s1"}, {})
    assert diff.total == 0


def test_moved_fraction_empty_is_zero():
    assert diff_assignment({}, {}).moved_fraction == 0.0


def test_moves_sorted_by_fileset():
    old = {"b": "s1", "a": "s1", "c": "s1"}
    new = {"b": "s2", "a": "s2", "c": "s2"}
    diff = diff_assignment(old, new)
    assert [m.fileset for m in diff.moves] == ["a", "b", "c"]


def test_ledger_accumulates():
    ledger = MovementLedger()
    ledger.record(diff_assignment({"a": "x", "b": "x"}, {"a": "y", "b": "x"}))
    ledger.record(diff_assignment({"a": "y", "b": "x"}, {"a": "y", "b": "x"}))
    assert ledger.reconfigurations == 2
    assert ledger.total_moves == 1
    assert ledger.total_stayed == 3
    assert ledger.mean_moves == pytest.approx(0.5)
    assert ledger.preservation == pytest.approx(3 / 4)
    assert ledger.moves_per_reconfig == [1, 0]


def test_ledger_empty_defaults():
    ledger = MovementLedger()
    assert ledger.mean_moves == 0.0
    assert ledger.preservation == 1.0
    summary = ledger.summary()
    assert summary["reconfigurations"] == 0.0
