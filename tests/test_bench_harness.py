"""Unit tests for the ``repro-bench`` harness (repro.bench).

Covers the timer (calibration, median-of-k statistics, pedantic mode),
suite discovery without pytest (parametrize expansion, fixture
injection), report schema round-trips, the regression gate, and the CLI
end-to-end against a synthetic suite in a temporary repo layout.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import contracts
from repro.bench.cli import main
from repro.bench.discovery import (
    DEFAULT_SUITES,
    DiscoveryError,
    collect_cases,
    discover_suites,
    find_benchmarks_dir,
    load_suite_module,
    run_case,
    run_suite,
)
from repro.bench.report import (
    SCHEMA_VERSION,
    ReportError,
    build_document,
    compare,
    format_gate_result,
    git_rev,
    load_document,
    write_document,
)
from repro.bench.timing import BenchTimer, TimerConfig, TimingStats

#: Contract mode compiled into this pytest process; the CLI is always
#: invoked with it so _ensure_contract_mode never needs to re-exec (an
#: os.execve would replace the test runner).
CURRENT_MODE = "off" if contracts.COMPILED_OUT else "on"

#: Near-instant timer knobs for tests.
FAST = TimerConfig(warmup_rounds=0, rounds=2, min_round_ns=0)

SUITE_SOURCE = textwrap.dedent(
    """
    import pytest

    def test_plain(benchmark):
        benchmark(sum, range(16))

    @pytest.mark.parametrize("n", [2, 4])
    def test_param(benchmark, n):
        result = benchmark(sum, range(n))
        benchmark.extra_info["n"] = n

    def test_quick_flag(benchmark, quick):
        benchmark.pedantic(lambda: quick, rounds=1)
        benchmark.extra_info["quick"] = quick
    """
)


@pytest.fixture()
def fake_repo(tmp_path: Path) -> Path:
    """A minimal repo layout: pyproject.toml + benchmarks/bench_toy.py."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'toy'\n")
    bench_dir = tmp_path / "benchmarks"
    bench_dir.mkdir()
    (bench_dir / "bench_toy.py").write_text(SUITE_SOURCE)
    return tmp_path


# ----------------------------------------------------------------------
# Timer
# ----------------------------------------------------------------------
def test_timer_config_validation():
    TimerConfig().validate()
    with pytest.raises(ValueError):
        TimerConfig(rounds=0).validate()
    with pytest.raises(ValueError):
        TimerConfig(warmup_rounds=-1).validate()
    with pytest.raises(ValueError):
        TimerConfig(min_round_ns=-1).validate()
    with pytest.raises(ValueError):
        TimerConfig(max_iterations=0).validate()


def test_timing_stats_from_round_times():
    stats = TimingStats.from_round_times([10, 20, 30], iterations=10)
    assert stats.median_ns == 2.0
    assert stats.min_ns == 1.0
    assert stats.max_ns == 3.0
    assert stats.rounds == 3
    assert stats.iterations == 10
    assert set(stats.as_dict()) == {
        "median_ns", "mean_ns", "stddev_ns", "min_ns", "max_ns",
        "rounds", "iterations",
    }
    with pytest.raises(ValueError):
        TimingStats.from_round_times([], iterations=1)


def test_bench_timer_call_returns_last_result_and_records_stats():
    timer = BenchTimer(FAST)
    calls = []

    def target(x):
        calls.append(x)
        return x * 2

    assert timer(target, 21) == 42
    assert timer.stats is not None
    assert timer.stats.rounds == FAST.rounds
    # calibration call + timed rounds (no warmup under FAST)
    assert len(calls) >= 1 + FAST.rounds


def test_bench_timer_calibration_scales_iterations():
    timer = BenchTimer(TimerConfig(min_round_ns=1_000, max_iterations=50))
    assert timer._calibrate(single_ns=2_000) == 1
    assert timer._calibrate(single_ns=100) == 10
    assert timer._calibrate(single_ns=30) == 34  # ceil(1000/30)
    assert timer._calibrate(single_ns=1) == 50  # capped at max_iterations


def test_bench_timer_pedantic_pins_rounds():
    timer = BenchTimer(FAST)
    seen = []
    timer.pedantic(seen.append, args=(1,), rounds=3, iterations=2)
    assert timer.stats is not None
    assert timer.stats.rounds == 3
    assert timer.stats.iterations == 2
    assert len(seen) == 6


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def test_find_benchmarks_dir_walks_up(fake_repo: Path):
    nested = fake_repo / "src" / "deep"
    nested.mkdir(parents=True)
    assert find_benchmarks_dir(nested) == fake_repo / "benchmarks"
    with pytest.raises(DiscoveryError):
        find_benchmarks_dir(Path("/nonexistent-root-for-bench"))


def test_discover_suites_maps_names(fake_repo: Path):
    suites = discover_suites(fake_repo / "benchmarks")
    assert suites == {"toy": fake_repo / "benchmarks" / "bench_toy.py"}
    empty = fake_repo / "empty"
    empty.mkdir()
    with pytest.raises(DiscoveryError):
        discover_suites(empty)


def test_repo_default_suites_are_discoverable():
    bench_dir = find_benchmarks_dir(Path(__file__).resolve().parent)
    available = discover_suites(bench_dir)
    for name in DEFAULT_SUITES:
        assert name in available


def test_collect_cases_expands_parametrize(fake_repo: Path):
    module = load_suite_module(fake_repo / "benchmarks" / "bench_toy.py")
    names = [case.name for case in collect_cases(module)]
    assert names == [
        "test_plain",
        "test_param[n=2]",
        "test_param[n=4]",
        "test_quick_flag",
    ]


def test_run_case_injects_fixtures(fake_repo: Path):
    module = load_suite_module(fake_repo / "benchmarks" / "bench_toy.py")
    cases = {c.name: c for c in collect_cases(module)}
    result = run_case(cases["test_param[n=4]"], FAST, quick=False)
    assert result.params == {"n": 4}
    assert result.extra_info == {"n": 4}
    assert result.stats["rounds"] == FAST.rounds
    quick_result = run_case(cases["test_quick_flag"], FAST, quick=True)
    assert quick_result.extra_info == {"quick": True}


def test_run_case_rejects_unknown_fixture(fake_repo: Path):
    bench_dir = fake_repo / "benchmarks"
    (bench_dir / "bench_bad.py").write_text(
        "def test_needs_db(benchmark, database):\n    benchmark(sum, [])\n"
    )
    module = load_suite_module(bench_dir / "bench_bad.py")
    with pytest.raises(DiscoveryError, match="database"):
        run_case(collect_cases(module)[0], FAST, quick=False)


def test_run_case_requires_timer_use(fake_repo: Path):
    bench_dir = fake_repo / "benchmarks"
    (bench_dir / "bench_lazy.py").write_text(
        "def test_never_measures(benchmark):\n    pass\n"
    )
    module = load_suite_module(bench_dir / "bench_lazy.py")
    with pytest.raises(DiscoveryError, match="never invoked"):
        run_case(collect_cases(module)[0], FAST, quick=False)


def test_run_suite_end_to_end(fake_repo: Path):
    results = run_suite(fake_repo / "benchmarks" / "bench_toy.py", FAST)
    assert len(results) == 4
    assert all(r.stats["median_ns"] > 0 for r in results)


# ----------------------------------------------------------------------
# Report + gate
# ----------------------------------------------------------------------
def make_document(fake_repo: Path, **overrides):
    results = run_suite(fake_repo / "benchmarks" / "bench_toy.py", FAST)
    doc = build_document(
        "toy",
        results,
        config=FAST,
        seed=0,
        quick=False,
        contracts=CURRENT_MODE,
        rev=git_rev(fake_repo),
    )
    doc.update(overrides)
    return doc


def test_document_roundtrip_and_schema(fake_repo: Path, tmp_path: Path):
    doc = make_document(fake_repo)
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["suite"] == "toy"
    assert doc["git_rev"] == "unknown"  # tmp repo is outside git
    assert {"warmup_rounds", "rounds", "min_round_ns"} <= set(doc["timer"])
    path = tmp_path / "BENCH_toy.json"
    write_document(doc, path)
    assert load_document(path) == doc
    # stable, diff-friendly formatting
    assert path.read_text().endswith("\n")


def test_load_document_rejects_bad_inputs(tmp_path: Path):
    bad_json = tmp_path / "corrupt.json"
    bad_json.write_text("{nope")
    with pytest.raises(ReportError, match="not valid JSON"):
        load_document(bad_json)
    wrong_version = tmp_path / "old.json"
    wrong_version.write_text(json.dumps({"schema_version": 999, "results": []}))
    with pytest.raises(ReportError, match="schema_version"):
        load_document(wrong_version)
    no_results = tmp_path / "empty.json"
    no_results.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
    with pytest.raises(ReportError, match="results"):
        load_document(no_results)


def result_entry(name: str, median: float) -> dict:
    return {"name": name, "median_ns": median}


def test_compare_flags_regressions_only_past_gate():
    current = {"suite": "toy", "results": [
        result_entry("a", 130.0),  # +30% -> breach at 25%
        result_entry("b", 120.0),  # +20% -> ok
        result_entry("new", 50.0),
    ]}
    baseline = {"results": [
        result_entry("a", 100.0),
        result_entry("b", 100.0),
        result_entry("gone", 10.0),
    ]}
    verdict = compare(current, baseline, gate=0.25)
    assert [c.name for c in verdict.compared] == ["a", "b"]
    assert [c.name for c in verdict.regressions] == ["a"]
    assert verdict.only_current == ["new"]
    assert verdict.only_baseline == ["gone"]
    assert not verdict.passed
    text = format_gate_result(verdict, 0.25)
    assert "REGRESSION" in text and "FAIL" in text
    # Relaxing the gate past the slowdown passes.
    relaxed = compare(current, baseline, gate=0.5)
    assert relaxed.passed
    assert "PASS" in format_gate_result(relaxed, 0.5)
    with pytest.raises(ReportError):
        compare(current, baseline, gate=-0.1)


def test_compare_zero_baseline_is_not_a_breach():
    current = {"suite": "toy", "results": [result_entry("a", 5.0)]}
    baseline = {"results": [result_entry("a", 0.0)]}
    assert compare(current, baseline).passed


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cli(fake_repo: Path, *extra: str) -> int:
    return main([
        "--benchmarks-dir", str(fake_repo / "benchmarks"),
        "--output-dir", str(fake_repo),
        "--suites", "toy",
        "--rounds", "1",
        "--warmup", "0",
        "--min-round-ms", "0",
        "--contracts", CURRENT_MODE,
        *extra,
    ])


def test_cli_writes_reports_and_skips_gate_without_baseline(
    fake_repo: Path, capsys
):
    assert cli(fake_repo) == 0
    out = capsys.readouterr().out
    assert "gate skipped" in out
    document = load_document(fake_repo / "BENCH_toy.json")
    assert document["suite"] == "toy"
    assert len(document["results"]) == 4


def test_cli_update_baseline_then_gate_passes(fake_repo: Path, capsys):
    assert cli(fake_repo, "--update-baseline") == 0
    baseline_path = fake_repo / "benchmarks" / "baselines" / "BENCH_toy.json"
    assert baseline_path.is_file()
    # Single-round sub-microsecond timings are wildly noisy, so the PASS
    # path is made deterministic: inflate the baseline medians until no
    # rerun can breach — this stays a pure plumbing test (reports found,
    # cases matched by name, verdict PASS, exit 0).
    doc = load_document(baseline_path)
    for entry in doc["results"]:
        entry["median_ns"] = entry["median_ns"] * 1e6
    write_document(doc, baseline_path)
    assert cli(fake_repo) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_gate_breach_exits_one(fake_repo: Path, capsys):
    assert cli(fake_repo, "--update-baseline") == 0
    baseline_path = fake_repo / "benchmarks" / "baselines" / "BENCH_toy.json"
    doc = load_document(baseline_path)
    for entry in doc["results"]:
        entry["median_ns"] = entry["median_ns"] / 1e6  # force huge slowdown
    write_document(doc, baseline_path)
    assert cli(fake_repo) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # --no-gate measures without comparing.
    assert cli(fake_repo, "--no-gate") == 0
    # A relaxed-enough gate would still fail here; disabling wins.


def test_cli_list_and_unknown_suite(fake_repo: Path, capsys):
    assert main([
        "--benchmarks-dir", str(fake_repo / "benchmarks"), "--list",
    ]) == 0
    assert "toy" in capsys.readouterr().out
    assert cli(fake_repo, "--suites", "nope") == 2
    assert "unknown suite" in capsys.readouterr().err
