"""The determinism sanitizer: digest chains, bisection, and the CLI.

Three layers of coverage:

- unit: :class:`DigestSink` chain algebra and :func:`first_divergence`;
- determinism: every real scenario's digest chain is a pure function of
  the seed when replayed in-process;
- end to end: the planted-nondeterminism fixture, run through the real
  subprocess pipeline, bisects to the *exact* first divergent event
  (verified against a record-by-record ground truth), and the CLI
  reports it with the right exit code and SARIF payload.

The subprocess tests spawn four extra interpreters total; the planted
scenario is tiny, so they stay well inside the tier-1 budget.
"""

import json

import pytest

from repro.dsan import cli
from repro.dsan.runner import GcJitterSink, _spawn, compare, run_scenario
from repro.runtime.telemetry import (
    DigestSink,
    MemorySink,
    RequestArrived,
    RequestCompleted,
    first_divergence,
)
from repro.units import Seconds


def _records(n, cost=0.25):
    return [
        RequestArrived(time=Seconds(float(i)), fileset=f"fs{i}", cost=cost)
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# DigestSink
# ----------------------------------------------------------------------
def test_digest_chain_is_a_pure_function_of_the_record_prefix():
    a, b = DigestSink(), DigestSink()
    for record in _records(5):
        a.emit(record)
        b.emit(record)
    assert len(a) == 5
    assert a.chain == b.chain


def test_digest_chain_diverges_at_first_differing_record_and_stays_diverged():
    a, b = DigestSink(), DigestSink()
    for record in _records(6):
        a.emit(record)
    for i, record in enumerate(_records(6, cost=0.25)):
        if i == 3:
            record = RequestArrived(
                time=Seconds(3.0), fileset="fs3", cost=0.5
            )
        b.emit(record)
    assert a.chain[:3] == b.chain[:3]
    # Rolling chain: one differing record poisons every later link.
    assert all(x != y for x, y in zip(a.chain[3:], b.chain[3:]))
    assert first_divergence(a.chain, b.chain) == 3


def test_digest_sink_keeps_records_only_on_request():
    plain = DigestSink()
    keeping = DigestSink(keep_records=True)
    record = RequestCompleted(
        time=Seconds(1.0), server="server0", latency=Seconds(0.5)
    )
    plain.emit(record)
    keeping.emit(record)
    assert plain.records is None
    assert keeping.records == [record]
    assert plain.chain == keeping.chain


# ----------------------------------------------------------------------
# first_divergence
# ----------------------------------------------------------------------
def test_first_divergence_equal_chains_and_empty():
    chain = [f"h{i}" for i in range(8)]
    assert first_divergence(chain, list(chain)) is None
    assert first_divergence([], []) is None


def test_first_divergence_strict_prefix_diverges_at_shorter_length():
    chain = [f"h{i}" for i in range(8)]
    assert first_divergence(chain, chain[:5]) == 5
    assert first_divergence(chain[:5], chain) == 5
    assert first_divergence([], chain) == 0


@pytest.mark.parametrize("where", [0, 1, 4, 7])
def test_first_divergence_bisects_to_any_position(where):
    """Chain property: link i differs iff some record <= i differed."""
    good = [f"h{i}" for i in range(8)]
    bad = good[:where] + [f"X{i}" for i in range(where, 8)]
    assert first_divergence(good, bad) == where
    # Unequal lengths past the divergence point do not move it (unless
    # truncation removes the divergent link itself).
    assert first_divergence(good, bad[:-2]) == min(where, len(bad) - 2)


# ----------------------------------------------------------------------
# In-process determinism of the real scenarios
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", ["cluster", "fs", "proto"])
def test_scenario_chain_is_reproducible_and_seed_sensitive(scenario):
    first = run_scenario(scenario, seed=1, quick=True)
    again = run_scenario(scenario, seed=1, quick=True)
    other = run_scenario(scenario, seed=2, quick=True)
    assert len(first.chain) > 0
    assert first.chain == again.chain
    assert first.chain != other.chain


def test_run_scenario_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("nope", seed=0)


def test_gc_jitter_sink_forwards_every_record():
    inner = MemorySink()
    sink = GcJitterSink(inner, every=2)
    records = _records(5)
    for record in records:
        sink.emit(record)
    assert inner.records == records


# ----------------------------------------------------------------------
# End to end: the planted fixture through the subprocess pipeline
# ----------------------------------------------------------------------
def test_planted_bisects_to_exact_first_divergent_event():
    seed = 5
    baseline = _spawn("planted", seed, quick=True, hashseed=0, gc_every=0)
    perturbed = _spawn("planted", seed, quick=True, hashseed=1, gc_every=0)
    # Ground truth from the records themselves, independent of digests.
    truth = next(
        i
        for i, (a, b) in enumerate(
            zip(baseline["records"], perturbed["records"])
        )
        if a != b
    )
    divergence = compare("planted", seed, quick=True, hashseed_perturb=True)
    assert divergence.diverged
    assert divergence.index == truth
    assert divergence.baseline_record == baseline["records"][truth]
    assert divergence.perturbed_record == perturbed["records"][truth]
    # The fixture's arrival prefix is sorted, hence stable: the first
    # divergent event must be a set-ordered dispatch.
    arrivals = 16 + seed % 7
    assert divergence.index >= arrivals
    assert divergence.baseline_record["kind"] == "dispatch"


def test_planted_replays_identically_without_perturbation(capsys):
    exit_code = cli.main(["planted", "--seed", "5", "--quick"])
    assert exit_code == 0
    assert "bit-identically" in capsys.readouterr().err


def test_cli_reports_planted_divergence_as_sarif(tmp_path):
    out = tmp_path / "dsan.sarif"
    exit_code = cli.main(
        [
            "planted",
            "--seed",
            "5",
            "--quick",
            "--hashseed-perturb",
            "--format",
            "sarif",
            "--output",
            str(out),
        ]
    )
    assert exit_code == 1
    sarif = json.loads(out.read_text())
    results = sarif["runs"][0]["results"]
    assert len(results) == 1
    assert results[0]["ruleId"] == "DSAN001"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "dsan/planted"


def test_cli_usage_errors(capsys):
    assert cli.main([]) == 2
    assert "scenario is required" in capsys.readouterr().err
    assert cli.main(["--list"]) == 0
    listing = capsys.readouterr().out
    for name in ("cluster", "fs", "proto", "planted"):
        assert name in listing
