"""Property tests for the delegate protocol.

Random crash/recover schedules (keeping at least one node alive) must
always converge to exactly one delegate that every live node agrees on,
with monotone epochs — the safety/liveness core of the §4 control plane.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proto import ControlPlane, ProtocolConfig

FAST = ProtocolConfig(
    heartbeat_interval=0.5,
    heartbeat_timeout=1.6,
    election_timeout=0.3,
    report_timeout=0.3,
    tuning_interval=5.0,
)

#: Settle time after the last membership event: generous multiple of the
#: heartbeat timeout + election rounds.
SETTLE = 12.0


@given(
    n=st.integers(min_value=2, max_value=6),
    events=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=30.0, allow_nan=False),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=0,
        max_size=5,
    ),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_single_agreed_delegate_after_any_crash_recover_schedule(
    n, events, seed
):
    cp = ControlPlane(n, seed=seed, protocol_config=FAST)
    cp.start()
    last_time = 0.0
    # Apply events in time order, flipping node state (crash <-> recover),
    # never taking down the whole cluster.
    for time, idx in sorted(events):
        cp.run_until(max(time, last_time))
        last_time = max(time, last_time)
        name = f"node{idx % n:02d}"
        node = cp.nodes[name]
        if node.alive:
            if len(cp.live_nodes) > 1:
                cp.crash(name)
        else:
            cp.recover(name)
    cp.run_until(last_time + SETTLE)

    live = cp.live_nodes
    assert live, "schedule never empties the cluster"
    # Liveness + safety: every live node agrees on one live delegate.
    views = {cp.nodes[name].delegate for name in live}
    assert len(views) == 1, views
    delegate = views.pop()
    assert delegate in live
    # The agreed delegate believes it, too.
    assert cp.nodes[delegate].is_delegate


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=15, deadline=None)
def test_epochs_never_regress_at_any_node(seed):
    cp = ControlPlane(4, seed=seed, protocol_config=FAST)
    cp.start()
    observed: dict[str, int] = {name: 0 for name in cp.nodes}
    for step in range(8):
        cp.run_until((step + 1) * 4.0)
        for name, node in cp.nodes.items():
            assert node.epoch >= observed[name], name
            observed[name] = node.epoch


@given(
    seed=st.integers(min_value=0, max_value=500),
    crash_at=st.floats(min_value=3.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=15, deadline=None)
def test_delegate_crash_always_heals(seed, crash_at):
    cp = ControlPlane(3, seed=seed, protocol_config=FAST)
    cp.start()
    cp.run_until(crash_at)
    victim = cp.current_delegate()
    if victim is None:
        cp.run_until(crash_at + SETTLE)
        victim = cp.current_delegate()
    assert victim is not None
    cp.crash(victim)
    cp.run_until(cp.engine.now + SETTLE)
    healed = cp.current_delegate()
    assert healed is not None and healed != victim
