"""Whole-program linting: call graph edge cases and the RPL1xx rules.

Two halves:

1. :class:`repro.lint.flow.callgraph.CallGraph` on synthetic projects —
   cycles, decorated functions, method resolution through ``self`` and
   inferred receivers, ``__init__.py`` re-exports, and dynamic calls
   degrading to the explicit "unknown" bucket (never guessed edges).
2. Bad-fixture projects for RPL101/RPL102/RPL103 where the offending
   value crosses a function (or class) boundary — exactly the bugs the
   per-file rules of PR 1 cannot see — plus the clean twins proving the
   rules stay quiet, and suppression-comment handling.

Fixtures go through :func:`repro.lint.lint_project`, the in-memory
entry point, with an explicit rule selection so per-file rules (which
would also fire on intentionally bad code) stay out of the way.
"""

from repro.lint import lint_project
from repro.lint.engine import build_context
from repro.lint.flow import build_project
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.mutation import ContractBypass
from repro.lint.flow.rng_provenance import RngProvenance
from repro.lint.flow.units import UnitConsistency


def make_graph(sources: dict[str, str]) -> CallGraph:
    contexts = [build_context(path, text) for path, text in sources.items()]
    return CallGraph(build_project(contexts))


# ----------------------------------------------------------------------
# Call-graph edge cases
# ----------------------------------------------------------------------
def test_callgraph_cycles_terminate_and_resolve():
    graph = make_graph({
        "src/repro/core/cyc.py": (
            "def ping(n):\n"
            "    return pong(n - 1) if n else 0\n"
            "def pong(n):\n"
            "    return ping(n - 1) if n else 1\n"
        ),
    })
    ping, pong = "repro.core.cyc.ping", "repro.core.cyc.pong"
    assert pong in graph.edges[ping]
    assert ping in graph.edges[pong]
    assert graph.reachable_from({ping}) == {ping, pong}


def test_callgraph_decorated_functions_keep_edges_and_decorators():
    graph = make_graph({
        "src/repro/core/deco.py": (
            "from ..contracts import checks_invariants\n"
            "def helper():\n"
            "    return 1\n"
            "class Box:\n"
            "    def check_invariants(self):\n"
            "        pass\n"
            "    @checks_invariants\n"
            "    def mutate(self):\n"
            "        return helper()\n"
        ),
    })
    node = graph.functions["repro.core.deco.Box.mutate"]
    assert any(d.endswith("checks_invariants") for d in node.decorators)
    assert "repro.core.deco.helper" in graph.edges["repro.core.deco.Box.mutate"]


def test_callgraph_resolves_methods_through_self_and_bases():
    graph = make_graph({
        "src/repro/core/meth.py": (
            "class Base:\n"
            "    def shared(self):\n"
            "        return 0\n"
            "class Child(Base):\n"
            "    def own(self):\n"
            "        return self.shared() + self.local()\n"
            "    def local(self):\n"
            "        return 1\n"
        ),
    })
    edges = graph.edges["repro.core.meth.Child.own"]
    assert "repro.core.meth.Base.shared" in edges
    assert "repro.core.meth.Child.local" in edges


def test_callgraph_resolves_reexported_names():
    graph = make_graph({
        "src/repro/sub/__init__.py": "from .impl import thing\n",
        "src/repro/sub/impl.py": "def thing():\n    return 42\n",
        "src/repro/core/user.py": (
            "from ..sub import thing\n"
            "def use():\n"
            "    return thing()\n"
        ),
    })
    assert "repro.sub.impl.thing" in graph.edges["repro.core.user.use"]


def test_callgraph_resolves_annotated_receivers():
    graph = make_graph({
        "src/repro/core/recv.py": (
            "class Engine:\n"
            "    def schedule(self, delay):\n"
            "        return delay\n"
            "def drive(engine: Engine):\n"
            "    return engine.schedule(1.0)\n"
        ),
    })
    assert "repro.core.recv.Engine.schedule" in graph.edges["repro.core.recv.drive"]


def test_callgraph_dynamic_calls_degrade_to_unknown():
    graph = make_graph({
        "src/repro/core/dyn.py": (
            "def indirect(callback, obj):\n"
            "    callback()\n"
            "    getattr(obj, 'poke')()\n"
        ),
    })
    caller = "repro.core.dyn.indirect"
    # No guessed edges to project functions...
    assert not graph.edges.get(caller)
    # ...but the call sites are accounted for, not silently dropped.
    assert sum(1 for u in graph.unknown if u.caller == caller) >= 2


# ----------------------------------------------------------------------
# RPL101 — RNG-stream provenance
# ----------------------------------------------------------------------
RNG_MODULE = (
    "class StreamFactory:\n"
    "    def __init__(self, seed):\n"
    "        self.seed = seed\n"
    "    def stream(self, name):\n"
    "        return object()\n"
)


def test_rpl101_rawgen_crossing_a_function_boundary():
    findings = lint_project({
        "src/repro/core/load.py": (
            "import numpy as np\n"
            "def make_gen():\n"
            "    return np.random.default_rng(7)\n"
            "def sample_width():\n"
            "    gen = make_gen()\n"
            "    return gen.uniform(0.0, 1.0)\n"
        ),
    }, rules=[RngProvenance])
    assert [d.rule_id for d in findings] == ["RPL101"]
    assert findings[0].line == 6  # the sampling site, not the factory
    assert "raw RNG factory" in findings[0].message


def test_rpl101_stream_aliased_across_class_boundary():
    findings = lint_project({
        "src/repro/sim/rng.py": RNG_MODULE,
        "src/repro/core/producer.py": (
            "from ..sim.rng import StreamFactory\n"
            "class Producer:\n"
            "    def __init__(self, factory: StreamFactory):\n"
            "        self.rng = factory.stream('producer')\n"
            "    def draw(self):\n"
            "        return self.rng.uniform(0.0, 1.0)\n"
        ),
        "src/repro/core/consumer.py": (
            "from .producer import Producer\n"
            "class Consumer:\n"
            "    def __init__(self, producer: Producer):\n"
            "        self.rng = producer.rng\n"  # attribute aliasing
            "    def draw(self):\n"
            "        return self.rng.uniform(0.0, 1.0)\n"
        ),
    }, rules=[RngProvenance])
    assert [d.rule_id for d in findings] == ["RPL101"]
    assert findings[0].path == "src/repro/core/consumer.py"
    assert "'producer'" in findings[0].message
    assert "must not cross class boundaries" in findings[0].message


def test_rpl101_polymorphic_shared_base_is_one_component():
    findings = lint_project({
        "src/repro/sim/rng.py": RNG_MODULE,
        "src/repro/core/policy.py": (
            "from ..sim.rng import StreamFactory\n"
            "class Context:\n"
            "    def __init__(self, factory: StreamFactory):\n"
            "        self.rng = factory.stream('tuning')\n"
            "class Policy:\n"
            "    def __init__(self, context: Context):\n"
            "        self.context = context\n"
            "class Greedy(Policy):\n"
            "    def decide(self):\n"
            "        return self.context.rng.uniform(0.0, 1.0)\n"
            "class Random(Policy):\n"
            "    def decide(self):\n"
            "        return self.context.rng.uniform(0.0, 1.0)\n"
        ),
    }, rules=[RngProvenance])
    assert findings == []


def test_rpl101_private_stream_is_clean():
    findings = lint_project({
        "src/repro/sim/rng.py": RNG_MODULE,
        "src/repro/core/solo.py": (
            "from ..sim.rng import StreamFactory\n"
            "class Solo:\n"
            "    def __init__(self, factory: StreamFactory):\n"
            "        self.rng = factory.stream('solo')\n"
            "    def draw(self):\n"
            "        return self.rng.uniform(0.0, 1.0)\n"
        ),
    }, rules=[RngProvenance])
    assert findings == []


# ----------------------------------------------------------------------
# RPL102 — seconds/ticks unit consistency
# ----------------------------------------------------------------------
UNITS_MODULE = (
    "from typing import NewType\n"
    "Seconds = NewType('Seconds', float)\n"
    "Ticks = NewType('Ticks', int)\n"
)


def test_rpl102_tick_value_passed_as_seconds_across_functions():
    findings = lint_project({
        "src/repro/units.py": UNITS_MODULE,
        "src/repro/sim/clock.py": (
            "from ..units import Seconds\n"
            "def advance(delay: Seconds) -> Seconds:\n"
            "    return delay\n"
        ),
        "src/repro/core/shares.py": (
            "from ..units import Ticks\n"
            "from ..sim.clock import advance\n"
            "def grow(amount: Ticks) -> Ticks:\n"
            "    return amount\n"
            "def bad(amount: Ticks):\n"
            "    return advance(grow(amount))\n"  # ticks into a Seconds slot
        ),
    }, rules=[UnitConsistency])
    assert [d.rule_id for d in findings] == ["RPL102"]
    assert findings[0].path == "src/repro/core/shares.py"
    assert "argument 'delay'" in findings[0].message
    assert "expects seconds but receives ticks" in findings[0].message


def test_rpl102_mixed_arithmetic_from_cross_function_returns():
    findings = lint_project({
        "src/repro/units.py": UNITS_MODULE,
        "src/repro/core/mix.py": (
            "from ..units import Seconds, Ticks\n"
            "def elapsed() -> Seconds:\n"
            "    return Seconds(1.5)\n"
            "def quota() -> Ticks:\n"
            "    return Ticks(64)\n"
            "def bad():\n"
            "    return elapsed() + quota()\n"
        ),
    }, rules=[UnitConsistency])
    assert [d.rule_id for d in findings] == ["RPL102"]
    assert "mixes" in findings[0].message


def test_rpl102_unconverted_return():
    findings = lint_project({
        "src/repro/units.py": UNITS_MODULE,
        "src/repro/core/conv.py": (
            "from ..units import Seconds, Ticks\n"
            "def quota() -> Ticks:\n"
            "    return Ticks(64)\n"
            "def window() -> Seconds:\n"
            "    return quota()\n"  # ticks returned where Seconds declared
        ),
    }, rules=[UnitConsistency])
    assert [d.rule_id for d in findings] == ["RPL102"]
    assert "declares seconds but" in findings[0].message
    assert "returns ticks" in findings[0].message


def test_rpl102_division_erases_units():
    # s / RESOLUTION converts between unit systems; the quotient carries
    # no unit and may flow anywhere.
    findings = lint_project({
        "src/repro/units.py": UNITS_MODULE,
        "src/repro/core/ratio.py": (
            "from ..units import Seconds, Ticks\n"
            "def rate(window: Seconds, share: Ticks) -> float:\n"
            "    return share / window\n"
        ),
    }, rules=[UnitConsistency])
    assert findings == []


# ----------------------------------------------------------------------
# RPL103 — contract-bypassing mutation
# ----------------------------------------------------------------------
BOX_MODULE = (
    "from ..contracts import checks_invariants\n"
    "class Box:\n"
    "    def __init__(self):\n"
    "        self._items = {}\n"
    "    def check_invariants(self):\n"
    "        for key in self._items:\n"
    "            assert key\n"
    "    @checks_invariants\n"
    "    def put(self, key, value):\n"
    "        self._items[key] = value\n"
)


def test_rpl103_external_write_across_class_boundary():
    findings = lint_project({
        "src/repro/core/box.py": BOX_MODULE,
        "src/repro/cluster/driver.py": (
            "from ..core.box import Box\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self.box = Box()\n"
            "    def poke(self, key, value):\n"
            "        self.box._items[key] = value\n"
        ),
    }, rules=[ContractBypass])
    assert [d.rule_id for d in findings] == ["RPL103"]
    assert findings[0].path == "src/repro/cluster/driver.py"
    assert "outside the class" in findings[0].message


def test_rpl103_undecorated_method_write():
    findings = lint_project({
        "src/repro/core/box.py": BOX_MODULE + (
            "    def sneak(self, key, value):\n"
            "        self._items[key] = value\n"
        ),
    }, rules=[ContractBypass])
    assert [d.rule_id for d in findings] == ["RPL103"]
    assert "not a contract-wrapped mutator" in findings[0].message


def test_rpl103_decorated_helpers_are_sanctioned():
    findings = lint_project({
        "src/repro/core/box.py": BOX_MODULE + (
            "    @checks_invariants\n"
            "    def put_many(self, pairs):\n"
            "        for key, value in pairs:\n"
            "            self._apply(key, value)\n"
            "    def _apply(self, key, value):\n"
            "        self._items[key] = value\n"
        ),
    }, rules=[ContractBypass])
    assert findings == []


def test_rpl103_outside_protected_layers_is_ignored():
    findings = lint_project({
        "src/repro/metrics/box.py": BOX_MODULE + (
            "    def sneak(self, key, value):\n"
            "        self._items[key] = value\n"
        ),
    }, rules=[ContractBypass])
    assert findings == []


def test_flow_rules_honor_suppression_comments():
    findings = lint_project({
        "src/repro/core/box.py": BOX_MODULE + (
            "    def sneak(self, key, value):\n"
            "        self._items[key] = value  # repro-lint: disable=RPL103\n"
        ),
    }, rules=[ContractBypass])
    assert findings == []
