"""Property tests for the generation-counter ``segments()`` cache.

``MappedInterval.segments`` memoizes the merged segment list per mutation
generation; every mutating path must bump the generation so the cache can
never serve a stale mapping.  These tests interleave reads (to populate the
cache) with randomized mutations and assert the cached answer always equals
a from-scratch rebuild via ``_build_segments``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import MappedInterval


def assert_cache_consistent(interval: MappedInterval) -> None:
    for server in interval.servers:
        cached = interval.segments(server)
        rebuilt = interval._build_segments(server)
        assert cached == rebuilt


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_cached_segments_always_match_rebuild(data):
    interval = MappedInterval(["s0", "s1"])
    next_id = 2
    n_ops = data.draw(st.integers(min_value=1, max_value=10), label="n_ops")
    for _ in range(n_ops):
        # Read first so the cache is warm when the mutation lands.
        assert_cache_consistent(interval)
        op = data.draw(
            st.sampled_from(
                ["set_shares", "add_server", "remove_server", "repartition"]
            ),
            label="op",
        )
        servers = interval.servers
        if op == "set_shares":
            weights = data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=9),
                    min_size=len(servers),
                    max_size=len(servers),
                ),
                label="weights",
            )
            interval.set_shares(dict(zip(servers, map(float, weights))))
        elif op == "add_server":
            if interval.n_servers >= 7:
                continue
            interval.add_server(f"s{next_id}")
            next_id += 1
        elif op == "remove_server":
            if interval.n_servers <= 1:
                continue
            victim = data.draw(st.sampled_from(servers), label="victim")
            interval.remove_server(victim)
        else:
            interval.repartition()
        assert_cache_consistent(interval)
    interval.check_invariants()


def test_segments_cache_hits_between_mutations():
    interval = MappedInterval(["a", "b"])
    first = interval.segments("a")
    assert interval._segments_gen == interval._generation
    assert "a" in interval._segments_cache
    again = interval.segments("a")
    assert again == first
    # The public API hands out copies: mutating one must not poison the cache.
    again.clear()
    assert interval.segments("a") == first


def test_segments_cache_invalidated_by_each_mutation_kind():
    interval = MappedInterval(["a", "b"])
    mutations = [
        lambda: interval.set_shares({"a": 3.0, "b": 1.0}),
        lambda: interval.add_server("c"),
        lambda: interval.repartition(),
        lambda: interval.remove_server("c"),
    ]
    for mutate in mutations:
        interval.segments("a")
        gen_before = interval._generation
        mutate()
        assert interval._generation > gen_before
        assert_cache_consistent(interval)
