"""Unit tests for the delegate tuner and the over-tuning heuristics."""

import pytest

from repro.core.tuning import (
    AGGRESSIVE,
    ALL_HEURISTICS,
    DIVERGENT_ONLY,
    THRESHOLD_ONLY,
    TOP_OFF_ONLY,
    DelegateTuner,
    ServerReport,
    TuningConfig,
    system_average,
)


def reports(latencies: dict[str, float], count: int = 100) -> list[ServerReport]:
    return [ServerReport(k, v, count if v > 0 else 0) for k, v in latencies.items()]


EQUAL = {"a": 1.0, "b": 1.0, "c": 1.0}


def test_server_report_validation():
    with pytest.raises(ValueError):
        ServerReport("a", -1.0, 10)
    with pytest.raises(ValueError):
        ServerReport("a", 1.0, -1)


def test_system_average_weighted_mean():
    rs = [ServerReport("a", 0.1, 300), ServerReport("b", 0.5, 100)]
    assert system_average(rs) == pytest.approx((0.1 * 300 + 0.5 * 100) / 400)


def test_system_average_median_and_mean():
    rs = [
        ServerReport("a", 0.1, 1),
        ServerReport("b", 0.2, 1),
        ServerReport("c", 10.0, 1),
    ]
    assert system_average(rs, "median") == pytest.approx(0.2)
    assert system_average(rs, "mean") == pytest.approx(10.3 / 3)


def test_system_average_ignores_idle_servers():
    rs = [ServerReport("a", 0.5, 10), ServerReport("b", 0.0, 0)]
    assert system_average(rs) == pytest.approx(0.5)


def test_system_average_all_idle_is_zero():
    rs = [ServerReport("a", 0.0, 0)]
    assert system_average(rs) == 0.0


def test_config_validation():
    with pytest.raises(ValueError):
        TuningConfig(threshold=-0.1)
    with pytest.raises(ValueError):
        TuningConfig(max_step=1.0)
    with pytest.raises(ValueError):
        TuningConfig(average="mode")


def test_mismatched_reports_rejected():
    tuner = DelegateTuner(AGGRESSIVE)
    with pytest.raises(ValueError):
        tuner.compute(EQUAL, reports({"a": 1.0, "b": 1.0}))


def test_aggressive_shrinks_hot_and_grows_cold():
    tuner = DelegateTuner(AGGRESSIVE)
    decision = tuner.compute(EQUAL, reports({"a": 0.9, "b": 0.1, "c": 0.1}))
    assert decision.new_shares["a"] < EQUAL["a"]
    assert decision.new_shares["b"] > EQUAL["b"]
    assert "a" in decision.tuned and "b" in decision.tuned


def test_no_tuning_when_no_load():
    tuner = DelegateTuner(AGGRESSIVE)
    decision = tuner.compute(EQUAL, reports({"a": 0.0, "b": 0.0, "c": 0.0}, count=0))
    assert decision.tuned == {}
    assert decision.new_shares == EQUAL


def test_factor_clamped_by_max_step():
    tuner = DelegateTuner(TuningConfig(
        use_thresholding=False, use_top_off=False, use_divergent=False,
        max_step=4.0, average="median",
    ))
    # Leave-one-out medians: ref(a)=0.505, ref(c)=50.5 — raw factors far
    # beyond the clamp in both directions.
    decision = tuner.compute(EQUAL, reports({"a": 100.0, "b": 1.0, "c": 0.01}))
    assert decision.tuned["a"] == pytest.approx(0.25)
    assert decision.tuned["c"] == pytest.approx(4.0)
    # b is far below its own reference (median of 100 and 0.01), so with
    # thresholding off it grows, clamped as well.
    assert decision.tuned["b"] == pytest.approx(4.0)


def test_thresholding_leaves_in_band_servers_alone():
    tuner = DelegateTuner(THRESHOLD_ONLY)  # t = 0.5
    # Each server sits inside [ref*(1-t), ref*(1+t)] of its leave-one-out
    # reference: ref(a)=0.85, ref(b)=1.05, ref(c)=1.0.
    decision = tuner.compute(EQUAL, reports({"a": 1.2, "b": 0.8, "c": 0.9}))
    assert decision.tuned == {}


def test_thresholding_tunes_out_of_band_servers():
    tuner = DelegateTuner(TuningConfig(
        use_thresholding=True, use_top_off=False, use_divergent=False,
        threshold=0.4,
    ))
    decision = tuner.compute(
        EQUAL, reports({"a": 5.0, "b": 1.0, "c": 1.0})
    )
    # Average (weighted) = 7/3 ~ 2.33; band [1.4, 3.27]: a above, b/c below.
    assert decision.new_shares["a"] < 1.0
    assert decision.new_shares["b"] > 1.0


def test_top_off_never_explicitly_grows():
    tuner = DelegateTuner(TOP_OFF_ONLY)
    decision = tuner.compute(EQUAL, reports({"a": 10.0, "b": 0.01, "c": 0.01}))
    assert decision.tuned.keys() == {"a"}
    assert decision.new_shares["a"] < 1.0
    assert decision.new_shares["b"] == 1.0  # grows only via renormalization


def test_divergent_requires_motion_away_from_average():
    tuner = DelegateTuner(DIVERGENT_ONLY)
    current = reports({"a": 2.0, "b": 0.5, "c": 1.0})
    prev_converging = reports({"a": 3.0, "b": 0.4, "c": 1.0})
    # a fell from 3->2 (converging down), b rose 0.4->0.5 (converging up):
    # neither is diverging, so nothing is tuned.
    decision = tuner.compute(EQUAL, current, prev_converging)
    assert decision.tuned == {}

    prev_diverging = reports({"a": 1.5, "b": 0.8, "c": 1.0})
    # a rose 1.5->2 while above average, b fell 0.8->0.5 while below.
    decision = tuner.compute(EQUAL, current, prev_diverging)
    assert set(decision.tuned) == {"a", "b"}


def test_divergent_skipped_without_previous_reports():
    """Delegate fail-over: stateless degradation tunes without the gate."""
    tuner = DelegateTuner(DIVERGENT_ONLY)
    decision = tuner.compute(EQUAL, reports({"a": 2.0, "b": 0.5, "c": 1.0}), None)
    assert decision.tuned  # gate skipped -> tuning proceeds


def test_idle_server_gets_grow_seed():
    cfg = TuningConfig(
        use_thresholding=False, use_top_off=False, use_divergent=False,
        grow_seed_fraction=0.05,
    )
    tuner = DelegateTuner(cfg)
    shares = {"a": 1.0, "b": 0.0}
    decision = tuner.compute(
        shares, [ServerReport("a", 1.0, 100), ServerReport("b", 0.0, 0)]
    )
    # b is idle (latency 0 < avg) and holds nothing; the seed lets it grow.
    assert decision.new_shares["b"] > 0.0


def test_all_heuristics_stable_on_balanced_system():
    tuner = DelegateTuner(ALL_HEURISTICS)
    decision = tuner.compute(EQUAL, reports({"a": 1.0, "b": 1.05, "c": 0.95}))
    assert decision.tuned == {}


def test_decision_preserves_relative_share_of_untuned():
    tuner = DelegateTuner(TOP_OFF_ONLY)
    shares = {"a": 2.0, "b": 1.0, "c": 1.0}
    decision = tuner.compute(shares, reports({"a": 10.0, "b": 0.1, "c": 0.1}))
    assert decision.new_shares["b"] == shares["b"]
    assert decision.new_shares["c"] == shares["c"]


# ----------------------------------------------------------------------
# Gray-failure regressions: unit discipline, all-idle no-op, limp-then-idle
# ----------------------------------------------------------------------
def test_system_average_returns_float_seconds_for_every_method():
    """Regression: the ``-> Seconds`` annotation lied — bare ints/floats
    leaked out of ``system_average`` (and 0.0 for the no-active case was
    an int-ish literal).  Every path now returns a float Seconds value."""
    rs = [ServerReport("a", 0.25, 4), ServerReport("b", 0.75, 4)]
    for method in ("weighted_mean", "mean", "median"):
        value = system_average(rs, method)
        assert isinstance(value, float)
    assert isinstance(system_average([], "median"), float)
    assert system_average([ServerReport("a", 0.0, 0)], "mean") == 0.0


def test_all_idle_round_is_an_explicit_noop():
    """Regression: an all-idle report set used to fall through to the
    zero-width band ``[0, 0]`` comparison; it is now a declared no-op."""
    tuner = DelegateTuner(AGGRESSIVE)
    shares = {"a": 2.0, "b": 0.5, "c": 1.0}
    idle = [ServerReport(n, 0.0, 0) for n in shares]
    decision = tuner.compute(shares, idle)
    assert decision.average == 0.0
    assert decision.new_shares == shares
    assert decision.tuned == {}


def test_limp_then_idle_server_is_not_rewarded():
    """Regression for the ``latency <= 0.0`` max-boost path.

    A limping server the tuner already shrank to idle reports zero
    latency with zero requests; granting it ``max_step`` would yo-yo it
    straight back into rotation.  Unobserved zero latency must be
    neutral (factor 1.0, share unchanged)."""
    tuner = DelegateTuner(AGGRESSIVE)
    shares = {"a": 1.0, "b": 0.4}  # b's share is above the grow-seed floor
    decision = tuner.compute(
        shares, [ServerReport("a", 1.0, 100), ServerReport("b", 0.0, 0)]
    )
    assert decision.new_shares["b"] == shares["b"]
    assert decision.tuned.get("b", 1.0) == 1.0


def test_observed_zero_latency_still_earns_the_max_boost():
    """The counterpart: zero latency backed by served requests is a real
    observation and keeps the pre-fix behaviour (clamped max growth)."""
    tuner = DelegateTuner(AGGRESSIVE)
    shares = {"a": 1.0, "b": 0.4}
    decision = tuner.compute(
        shares, [ServerReport("a", 1.0, 100), ServerReport("b", 0.0, 50)]
    )
    assert decision.tuned["b"] == pytest.approx(AGGRESSIVE.max_step)
    assert decision.new_shares["b"] > shares["b"]


# ----------------------------------------------------------------------
# Limping server under every heuristic: share decreases monotonically
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config",
    [THRESHOLD_ONLY, TOP_OFF_ONLY, DIVERGENT_ONLY, ALL_HEURISTICS],
    ids=["threshold", "top-off", "divergent", "all"],
)
def test_heuristics_shed_share_under_rising_latency_ramp(config):
    """A limping server whose latency rises monotonically (limplock
    getting worse) must lose mapped share monotonically under every
    heuristic combination — no gate may mistake the ramp for noise."""
    tuner = DelegateTuner(config)
    shares = {"a": 1.0, "b": 1.0, "limp": 1.0}
    previous = None
    history = [shares["limp"]]
    for step, limp_latency in enumerate([3.0, 5.0, 7.0, 9.0, 11.0, 13.0]):
        current = [
            ServerReport("a", 1.0, 100),
            ServerReport("b", 1.0, 100),
            ServerReport("limp", limp_latency, 100),
        ]
        decision = tuner.compute(shares, current, previous)
        assert decision.new_shares["limp"] <= shares["limp"], (
            f"{config!r} grew the limping server at ramp step {step}"
        )
        shares = decision.new_shares
        previous = current
        history.append(shares["limp"])
    assert history[-1] < history[0], (
        f"{config!r} never shed share across the whole ramp: {history}"
    )
    # The healthy servers never lost absolute share to the limper.
    assert shares["a"] >= 1.0 and shares["b"] >= 1.0


def test_median_average_robust_to_outlier():
    cfg = TuningConfig(
        use_thresholding=True, threshold=0.5, use_top_off=False,
        use_divergent=False, average="median",
    )
    tuner = DelegateTuner(cfg)
    decision = tuner.compute(
        {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0, "e": 1.0},
        reports({"a": 100.0, "b": 1.0, "c": 1.1, "d": 0.9, "e": 1.0}),
    )
    # Median ~1.0: only the outlier is tuned.
    assert set(decision.tuned) == {"a"}
