"""Unit tests for the coroutine process layer."""

import pytest

from repro.sim import Condition, Engine, Facility, Process, SimulationError, all_of


def test_hold_consumes_simulated_time():
    engine = Engine()
    times = []

    def body(proc):
        times.append(engine.now)
        yield proc.hold(2.0)
        times.append(engine.now)
        yield proc.hold(3.0)
        times.append(engine.now)

    Process(engine, body).start()
    engine.run()
    assert times == [0.0, 2.0, 5.0]


def test_start_delay():
    engine = Engine()
    times = []

    def body(proc):
        times.append(engine.now)
        yield proc.hold(1.0)

    Process(engine, body).start(delay=4.0)
    engine.run()
    assert times == [4.0]


def test_waitfor_blocks_until_signal():
    engine = Engine()
    cond = Condition("go")
    times = []

    def waiter(proc):
        yield proc.waitfor(cond)
        times.append(engine.now)

    def signaller(proc):
        yield proc.hold(7.0)
        cond.signal()

    Process(engine, waiter).start()
    Process(engine, signaller).start()
    engine.run()
    assert times == [7.0]


def test_waitfor_already_fired_condition_resumes_immediately():
    engine = Engine()
    cond = Condition()
    cond.signal()
    times = []

    def body(proc):
        yield proc.hold(1.0)
        yield proc.waitfor(cond)
        times.append(engine.now)

    Process(engine, body).start()
    engine.run()
    assert times == [1.0]


def test_request_queues_at_facility():
    engine = Engine()
    fac = Facility(engine, "cpu")
    times = []

    def body(name):
        def _body(proc):
            yield proc.request(fac, 2.0)
            times.append((name, engine.now))

        return _body

    Process(engine, body("a")).start()
    Process(engine, body("b")).start()
    engine.run()
    assert times == [("a", 2.0), ("b", 4.0)]


def test_terminated_condition_fires():
    engine = Engine()
    log = []

    def worker(proc):
        yield proc.hold(3.0)

    def watcher(proc):
        yield proc.waitfor(w.terminated)
        log.append(engine.now)

    w = Process(engine, worker).start()
    Process(engine, watcher).start()
    engine.run()
    assert log == [3.0]
    assert w.done


def test_all_of_waits_for_every_process():
    engine = Engine()
    log = []

    def make(d):
        def body(proc):
            yield proc.hold(d)

        return body

    procs = [Process(engine, make(d)).start() for d in (1.0, 5.0, 3.0)]
    done = all_of(engine, procs)

    def watcher(proc):
        yield proc.waitfor(done)
        log.append(engine.now)

    Process(engine, watcher).start()
    engine.run()
    assert log == [5.0]


def test_all_of_empty_fires_immediately():
    engine = Engine()
    done = all_of(engine, [])
    log = []

    def watcher(proc):
        yield proc.waitfor(done)
        log.append(engine.now)

    Process(engine, watcher).start()
    engine.run()
    assert log == [0.0]


def test_double_start_rejected():
    engine = Engine()

    def body(proc):
        yield proc.hold(1.0)

    proc = Process(engine, body).start()
    with pytest.raises(SimulationError):
        proc.start()


def test_negative_hold_rejected():
    engine = Engine()
    errors = []

    def body(proc):
        try:
            proc.hold(-1.0)
        except SimulationError as exc:
            errors.append(exc)
        yield proc.hold(0.0)

    Process(engine, body).start()
    engine.run()
    assert len(errors) == 1


def test_yielding_non_command_raises():
    engine = Engine()

    def body(proc):
        yield "not a command"

    Process(engine, body).start()
    with pytest.raises(SimulationError):
        engine.run()
