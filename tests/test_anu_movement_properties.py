"""Property tests for ANU's movement bounds (the cache-preservation claim).

The paper claims reconfigurations "move the minimum amount of workload
possible".  Exactly-minimal movement is not achievable with hashing (region
growth can capture earlier probes), but movement must be *proportional* to
the share change, never a global reshuffle.  These properties pin that
down over random reconfigurations:

- moved fraction is bounded by a small multiple of the total share change
  (total variation distance of the share distributions);
- a no-op rescale moves nothing;
- rescaling back restores most of the original assignment (hash placement
  is memoryless: the same regions imply the same assignment).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ANUPlacement, diff_assignment
from repro.core.interval import HALF

NAMES = [f"fs{i:04d}" for i in range(1500)]


def total_variation(old: dict[str, int], new: dict[str, int]) -> float:
    """TV distance of the two share distributions over the mapped half."""
    keys = set(old) | set(new)
    return sum(abs(old.get(k, 0) - new.get(k, 0)) for k in keys) / (2 * HALF)


@given(
    n=st.integers(min_value=2, max_value=6),
    weights=st.lists(
        st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
)
@settings(max_examples=25, deadline=None)
def test_movement_bounded_by_share_change(n, weights):
    placement = ANUPlacement([f"s{i}" for i in range(n)])
    before_shares = placement.shares()
    before = placement.assignment(NAMES)
    padded = (weights * n)[:n]
    placement.set_shares(dict(zip(placement.servers, padded)))
    after_shares = placement.shares()
    after = placement.assignment(NAMES)
    tv = total_variation(before_shares, after_shares)
    moved = diff_assignment(before, after).moved_fraction
    # Lower bound: at least ~the TV mass must move (mapped half covers half
    # the probability of a first-probe hit; captures add more).  Upper
    # bound: movement stays within a small multiple of the change plus
    # re-hash noise — never a global reshuffle.
    assert moved <= 4.0 * tv + 0.02, (moved, tv)


@given(n=st.integers(min_value=2, max_value=8))
def test_noop_rescale_moves_nothing(n):
    placement = ANUPlacement([f"s{i}" for i in range(n)])
    before = placement.assignment(NAMES[:400])
    placement.set_shares({s: 1.0 for s in placement.servers})
    after = placement.assignment(NAMES[:400])
    assert before == after


@given(
    n=st.integers(min_value=3, max_value=7),
    idx=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=20, deadline=None)
def test_rescale_round_trip_is_nearly_lossless(n, idx):
    """Shrink one server, then restore equal shares: the assignment mostly
    returns (exact geometric restoration is not guaranteed because shrink
    and grow pick partitions greedily, but the overlap must be large).

    n >= 3 only: with two servers so few partitions are occupied that the
    greedy grow path can legitimately relocate half the mass.
    """
    placement = ANUPlacement([f"s{i}" for i in range(n)])
    before = placement.assignment(NAMES[:800])
    victim = placement.servers[idx % n]
    shares = {s: 1.0 for s in placement.servers}
    shares[victim] = 0.3
    placement.set_shares(shares)
    placement.set_shares({s: 1.0 for s in placement.servers})
    after = placement.assignment(NAMES[:800])
    agree = sum(1 for k in before if before[k] == after[k]) / len(before)
    assert agree > 0.9


@given(n=st.integers(min_value=3, max_value=7))
@settings(max_examples=15, deadline=None)
def test_failure_movement_close_to_orphaned_fraction(n):
    placement = ANUPlacement([f"s{i}" for i in range(n)])
    before = placement.assignment(NAMES)
    victim = placement.servers[0]
    orphaned = sum(1 for s in before.values() if s == victim)
    placement.remove_server(victim)
    after = placement.assignment(NAMES)
    moved = diff_assignment(before, after).moved
    # Everything orphaned moves; captures add at most ~an equal amount.
    assert orphaned <= moved <= 2 * orphaned + 0.05 * len(NAMES)
