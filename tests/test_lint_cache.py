"""The on-disk lint cache: correctness of invalidation, plus a speed guard.

The cache is content-addressed (per-file results keyed by the file's
hash, whole-program results keyed by the hash of *every* package file),
so the invalidation tests here are really tests that the keys include
everything they must: file content, the rule selection, and the linter's
own version.  The final test is the benchmark guard from the issue: a
warm full-tree run must stay interactive.
"""

import json
import pathlib
import time

from repro.lint import lint_paths
from repro.lint.flow.cache import LintCache

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CLEAN = "def width(x):\n    return x\n"
DIRTY = "import numpy as np\ngen = np.random.default_rng()\n"


def project(tmp_path, name="mod.py", text=CLEAN):
    target = tmp_path / "src" / "repro" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


def test_warm_run_reproduces_cold_results(tmp_path):
    target = project(tmp_path, text=DIRTY)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([target], cache=LintCache(cache_dir))
    assert (cache_dir / "cache.json").exists()
    warm = lint_paths([target], cache=LintCache(cache_dir))
    assert warm == cold
    assert warm  # the fixture really has findings


def test_editing_a_file_invalidates_its_entries(tmp_path):
    target = project(tmp_path, text=CLEAN)
    cache_dir = tmp_path / "cache"
    assert lint_paths([target], cache=LintCache(cache_dir)) == []
    target.write_text(DIRTY, encoding="utf-8")
    findings = lint_paths([target], cache=LintCache(cache_dir))
    assert findings, "stale cache hit after edit"
    # And back: restoring the content re-hits the original entry.
    target.write_text(CLEAN, encoding="utf-8")
    assert lint_paths([target], cache=LintCache(cache_dir)) == []


def test_rule_selection_is_part_of_the_key(tmp_path):
    from repro.lint.rules import REGISTRY

    target = project(tmp_path, text=DIRTY)
    cache_dir = tmp_path / "cache"
    all_findings = lint_paths([target], cache=LintCache(cache_dir))
    only_rpl002 = lint_paths(
        [target],
        rules=[REGISTRY["RPL002"]],
        cache=LintCache(cache_dir),
    )
    assert {d.rule_id for d in only_rpl002} == {"RPL002"}
    assert lint_paths([target], cache=LintCache(cache_dir)) == all_findings


def test_corrupt_cache_degrades_to_cold_run(tmp_path):
    target = project(tmp_path, text=DIRTY)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([target], cache=LintCache(cache_dir))
    (cache_dir / "cache.json").write_text("{not json", encoding="utf-8")
    assert lint_paths([target], cache=LintCache(cache_dir)) == cold


def test_cache_file_is_versioned(tmp_path):
    target = project(tmp_path, text=DIRTY)
    cache_dir = tmp_path / "cache"
    lint_paths([target], cache=LintCache(cache_dir))
    data = json.loads((cache_dir / "cache.json").read_text(encoding="utf-8"))
    # A linter upgrade (different version token) must drop every entry.
    data["version"] = "0" * 64
    (cache_dir / "cache.json").write_text(json.dumps(data), encoding="utf-8")
    fresh = LintCache(cache_dir)
    assert fresh._data["per_file"] == {}


def test_benchmark_guard_warm_full_tree_run(tmp_path):
    """Issue acceptance: a warm cached full-tree run stays interactive.

    The cold run (parse + whole-program analysis over all of src/) pays
    the real cost and primes the cache; the warm run should be pure
    hashing + lookups.  The 5 s ceiling is deliberately loose for slow
    CI machines — locally this is well under 2 s.
    """
    trees = [
        REPO_ROOT / t
        for t in ("src", "tests", "benchmarks", "examples")
        if (REPO_ROOT / t).is_dir()
    ]
    cache_dir = tmp_path / "cache"
    cold = lint_paths(trees, cache=LintCache(cache_dir))
    start = time.perf_counter()
    warm = lint_paths(trees, cache=LintCache(cache_dir))
    elapsed = time.perf_counter() - start
    assert warm == cold == []
    assert elapsed < 5.0, f"warm cached run took {elapsed:.2f}s (budget 5s)"


def test_parallel_per_file_phase_matches_serial():
    """``jobs=N`` must produce byte-for-byte the diagnostics of ``jobs=1``.

    The parallel per-file phase merges worker results keyed by path —
    never by completion order — so any divergence here means the merge
    leaked scheduling into the output.
    """
    target = REPO_ROOT / "src" / "repro" / "sweep"
    serial = lint_paths([target], jobs=1)
    parallel = lint_paths([target], jobs=2)
    assert parallel == serial == []


def test_warm_cache_run_spawns_no_workers(tmp_path, monkeypatch):
    """A fully cached run must not pay worker-pool startup.

    Every file hits the per-file cache, so the pending set is empty and
    the spawn pool must never be constructed — enforced by making pool
    construction explode.
    """
    import multiprocessing

    cache_dir = tmp_path / "cache"
    target = REPO_ROOT / "src" / "repro" / "sweep"
    cold = lint_paths([target], cache=LintCache(cache_dir), jobs=2)

    def boom(*args, **kwargs):
        raise AssertionError("warm cached run must not spawn workers")

    monkeypatch.setattr(multiprocessing, "get_context", boom)
    warm = lint_paths([target], cache=LintCache(cache_dir), jobs=2)
    assert warm == cold
