"""Integration tests for the delegate protocol (election, tuning rounds,
config distribution, fail-over)."""

import pytest

from repro.core.tuning import ServerReport
from repro.proto import ControlPlane, NetworkConfig, ProtocolConfig

FAST = ProtocolConfig(
    heartbeat_interval=0.5,
    heartbeat_timeout=1.6,
    election_timeout=0.3,
    report_timeout=0.3,
    tuning_interval=3.0,
)


def skewed_model(name: str, now: float) -> ServerReport:
    """node00 is persistently slow; everyone else is fast."""
    return ServerReport(name, 0.5 if name == "node00" else 0.05, 100)


def test_bootstrap_elects_highest_priority():
    cp = ControlPlane(5, seed=0, protocol_config=FAST)
    cp.start()
    cp.run_until(2.0)
    assert cp.current_delegate() == "node04"
    assert cp.nodes["node04"].is_delegate


def test_all_nodes_learn_the_delegate():
    cp = ControlPlane(4, seed=1, protocol_config=FAST)
    cp.start()
    cp.run_until(3.0)
    for node in cp.nodes.values():
        assert node.delegate == "node03"


def test_tuning_rounds_shrink_slow_node_share():
    cp = ControlPlane(5, seed=2, protocol_config=FAST,
                      latency_model=skewed_model)
    cp.start()
    cp.run_until(30.0)
    assert cp.shares_agree()
    shares = cp.nodes["node02"].shares
    assert shares["node00"] < shares["node04"]
    assert cp.nodes["node04"].rounds_run >= 3


def test_config_epochs_monotone_per_node():
    cp = ControlPlane(5, seed=3, protocol_config=FAST,
                      latency_model=skewed_model)
    cp.start()
    cp.run_until(30.0)
    per_node: dict[str, list[int]] = {}
    for t, name, epoch in cp.config_log:
        per_node.setdefault(name, []).append(epoch)
    for name, epochs in per_node.items():
        assert epochs == sorted(epochs), name


def test_delegate_crash_triggers_failover():
    cp = ControlPlane(5, seed=4, protocol_config=FAST,
                      latency_model=skewed_model)
    cp.start()
    cp.run_until(5.0)
    assert cp.current_delegate() == "node04"
    cp.crash("node04")
    cp.run_until(15.0)
    assert cp.current_delegate() == "node03"
    assert cp.nodes["node03"].is_delegate
    # Tuning continues under the new delegate.
    rounds_before = cp.nodes["node03"].rounds_run
    cp.run_until(30.0)
    assert cp.nodes["node03"].rounds_run > rounds_before


def test_recovered_node_rejoins_without_usurping():
    cp = ControlPlane(4, seed=5, protocol_config=FAST)
    cp.start()
    cp.run_until(5.0)
    cp.crash("node03")
    cp.run_until(12.0)
    assert cp.current_delegate() == "node02"
    cp.recover("node03")
    cp.run_until(25.0)
    # node03 has the highest priority: it takes over on rejoining (bully).
    assert cp.current_delegate() == "node03"


def test_double_crash_failover_chain():
    cp = ControlPlane(5, seed=6, protocol_config=FAST)
    cp.start()
    cp.run_until(5.0)
    cp.crash("node04")
    cp.run_until(15.0)
    cp.crash("node03")
    cp.run_until(30.0)
    assert cp.current_delegate() == "node02"


def test_lossy_network_still_converges():
    cp = ControlPlane(
        5, seed=7, protocol_config=FAST, latency_model=skewed_model,
        network_config=NetworkConfig(min_latency=0.001, max_latency=0.01,
                                     loss=0.15),
    )
    cp.start()
    cp.run_until(60.0)
    assert cp.current_delegate() is not None
    delegate = cp.nodes[cp.current_delegate()]
    assert delegate.rounds_run >= 3
    shares = delegate.shares
    assert shares["node00"] < shares["node04"]


def test_new_delegate_starts_stateless():
    """After fail-over the new delegate has no previous reports, so its
    divergent gate is skipped for the first round (paper §6)."""
    cp = ControlPlane(3, seed=8, protocol_config=FAST,
                      latency_model=skewed_model)
    cp.start()
    cp.run_until(10.0)
    old = cp.current_delegate()
    cp.crash(old)
    cp.run_until(12.0)
    new_delegate = cp.nodes[cp.current_delegate()]
    assert new_delegate._previous_reports is None or new_delegate.rounds_run > 0


def test_single_node_control_plane():
    cp = ControlPlane(1, seed=9, protocol_config=FAST)
    cp.start()
    cp.run_until(5.0)
    assert cp.current_delegate() == "node00"


def test_protocol_config_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(heartbeat_interval=2.0, heartbeat_timeout=1.0)


def test_control_plane_validation():
    with pytest.raises(ValueError):
        ControlPlane(0)


def test_delegate_crash_mid_collection_round():
    """The delegate dies between broadcasting a report request and the
    round deadline; replies land at a dead node and the cluster heals."""
    cp = ControlPlane(4, seed=10, protocol_config=FAST,
                      latency_model=skewed_model)
    cp.start()
    cp.run_until(5.0)
    delegate = cp.current_delegate()
    assert delegate is not None
    # The next tuning round fires at a multiple of tuning_interval (3 s);
    # crash 0.1 s after one fires, inside the 0.3 s report window.
    next_round = (int(cp.engine.now // 3.0) + 1) * 3.0
    cp.run_until(next_round + 0.1)
    cp.crash(delegate)
    cp.run_until(next_round + 30.0)
    healed = cp.current_delegate()
    assert healed is not None and healed != delegate
    assert cp.nodes[healed].rounds_run >= 1  # tuning resumed


def test_two_node_cluster_delegate_loss():
    """Minimal redundancy: with n=2, losing the delegate leaves a lone
    survivor that elects itself."""
    cp = ControlPlane(2, seed=11, protocol_config=FAST)
    cp.start()
    cp.run_until(3.0)
    cp.crash(cp.current_delegate())
    cp.run_until(15.0)
    assert cp.current_delegate() == cp.live_nodes[0]
