"""Tests for the paper's synthetic workload generator (§7)."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    SyntheticConfig,
    fileset_weights,
    generate_synthetic,
    tune_scale_below_peak,
)


def test_default_matches_paper_parameters():
    cfg = SyntheticConfig()
    assert cfg.n_filesets == 500
    assert cfg.n_requests == 100_000
    assert cfg.duration == 10_000.0


def test_exact_request_count_and_duration():
    trace = generate_synthetic(SyntheticConfig(n_filesets=50, n_requests=5000,
                                               duration=100.0))
    assert len(trace) == 5000
    assert trace.duration == 100.0
    assert trace.times.max() < 100.0
    assert trace.times.min() >= 0.0


def test_times_sorted():
    trace = generate_synthetic(SyntheticConfig(n_filesets=20, n_requests=2000,
                                               duration=50.0))
    assert np.all(np.diff(trace.times) >= 0)


def test_weights_normalized_and_heterogeneous():
    cfg = SyntheticConfig(n_filesets=500, alpha=4.0)
    w = fileset_weights(cfg)
    assert w.sum() == pytest.approx(1.0)
    assert w.max() / w.min() > 50  # strong skew from x**alpha


def test_alpha_zero_is_uniform():
    cfg = SyntheticConfig(n_filesets=100, alpha=0.0)
    w = fileset_weights(cfg)
    assert np.allclose(w, 1.0 / 100)


def test_workload_stable_over_time():
    """Per-file-set request distribution is the same in both halves."""
    cfg = SyntheticConfig(n_filesets=20, n_requests=40_000, duration=1000.0,
                          alpha=2.0, seed=5)
    trace = generate_synthetic(cfg)
    first = trace.window(0.0, 500.0).demand_by_fileset()
    second = trace.window(500.0, 1000.0).demand_by_fileset()
    tot1, tot2 = sum(first.values()), sum(second.values())
    for name in trace.fileset_names:
        p1, p2 = first[name] / tot1, second[name] / tot2
        assert p1 == pytest.approx(p2, abs=0.02)


def test_poisson_interarrivals_per_fileset():
    """Within a file set, inter-arrival CV ~ 1 (exponential)."""
    cfg = SyntheticConfig(n_filesets=1, n_requests=20_000, duration=1000.0,
                          x_min=1.0)
    trace = generate_synthetic(cfg)
    gaps = np.diff(trace.times)
    cv = gaps.std() / gaps.mean()
    assert cv == pytest.approx(1.0, abs=0.05)


def test_deterministic_by_seed():
    a = generate_synthetic(SyntheticConfig(n_filesets=30, n_requests=1000,
                                           duration=10.0, seed=9))
    b = generate_synthetic(SyntheticConfig(n_filesets=30, n_requests=1000,
                                           duration=10.0, seed=9))
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.fileset_ids, b.fileset_ids)


def test_different_seed_differs():
    a = generate_synthetic(SyntheticConfig(n_filesets=30, n_requests=1000,
                                           duration=10.0, seed=1))
    b = generate_synthetic(SyntheticConfig(n_filesets=30, n_requests=1000,
                                           duration=10.0, seed=2))
    assert not np.array_equal(a.times, b.times)


def test_stochastic_cost_mode():
    cfg = SyntheticConfig(n_filesets=10, n_requests=5000, duration=100.0,
                          stochastic_cost=True, request_cost=0.2)
    trace = generate_synthetic(cfg)
    assert trace.costs.std() > 0
    assert trace.costs.mean() == pytest.approx(0.2, rel=0.1)


def test_deterministic_cost_mode():
    cfg = SyntheticConfig(n_filesets=10, n_requests=100, duration=100.0,
                          request_cost=0.25)
    trace = generate_synthetic(cfg)
    assert np.all(trace.costs == 0.25)


def test_tune_scale_below_peak():
    cfg = SyntheticConfig(n_filesets=10, n_requests=10_000, duration=1000.0)
    speeds = {"a": 1.0, "b": 3.0}
    tuned = tune_scale_below_peak(cfg, speeds, target_utilization=0.5)
    trace = generate_synthetic(tuned)
    assert trace.offered_load(sum(speeds.values())) == pytest.approx(0.5, rel=0.01)


def test_tune_scale_validation():
    cfg = SyntheticConfig()
    with pytest.raises(ValueError):
        tune_scale_below_peak(cfg, {"a": 1.0}, target_utilization=1.5)
    with pytest.raises(ValueError):
        tune_scale_below_peak(cfg, {}, target_utilization=0.5)


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticConfig(n_filesets=0)
    with pytest.raises(ValueError):
        SyntheticConfig(x_min=0.0)
    with pytest.raises(ValueError):
        SyntheticConfig(duration=0.0)


def test_zero_requests_allowed():
    trace = generate_synthetic(SyntheticConfig(n_filesets=5, n_requests=0,
                                               duration=10.0))
    assert len(trace) == 0
