"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.events import PRIORITY_EARLY, PRIORITY_LATE


def test_schedule_and_run_fires_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(2.0, fired.append, "b")
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(3.0, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 3.0


def test_equal_time_ties_break_by_priority_then_insertion():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "normal-1")
    engine.schedule(1.0, fired.append, "late", priority=PRIORITY_LATE)
    engine.schedule(1.0, fired.append, "early", priority=PRIORITY_EARLY)
    engine.schedule(1.0, fired.append, "normal-2")
    engine.run()
    assert fired == ["early", "normal-1", "normal-2", "late"]


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(5.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [5.5]


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(10.0, fired.append, "b")
    engine.run(until=5.0)
    assert fired == ["a"]
    assert engine.now == 5.0  # clock advanced to `until` like YACSIM
    engine.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.schedule(2.0, fired.append, "y")
    handle.cancel()
    engine.run()
    assert fired == ["y"]


def test_pending_drops_when_events_are_cancelled():
    engine = Engine()
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert engine.pending == 5
    handles[0].cancel()
    handles[3].cancel()
    assert engine.pending == 3
    # Cancelling twice must not double-count.
    handles[0].cancel()
    assert engine.pending == 3
    engine.run()
    assert engine.pending == 0
    assert engine.events_fired == 3


def test_pending_counts_live_events_during_run():
    engine = Engine()
    seen = []

    def observe():
        seen.append(engine.pending)

    guard = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, observe)
    guard.cancel()
    engine.schedule(3.0, observe)
    engine.run()
    # At t=2 only the t=3 observer remains; at t=3 nothing does.
    assert seen == [1, 0]


def test_cancel_after_fire_does_not_skew_pending():
    engine = Engine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    engine.run(until=1.5)
    handle.cancel()  # already fired: harmless no-op
    assert engine.pending == 1
    engine.run()
    assert engine.pending == 0


def test_cancel_after_drain_does_not_skew_pending():
    engine = Engine()
    handle = engine.schedule(1.0, lambda: None)
    engine.drain()
    assert engine.pending == 0
    handle.cancel()
    assert engine.pending == 0
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 1


def test_calendar_compaction_evicts_cancelled_corpses():
    engine = Engine()
    live = [engine.schedule(1000.0 + i, lambda: None) for i in range(4)]
    corpses = [engine.schedule(5000.0 + i, lambda: None) for i in range(200)]
    for handle in corpses:
        handle.cancel()
    # Cancelled entries outnumbered live ones: the heap was compacted.
    assert engine.pending == 4
    assert len(engine._calendar) < 64
    fired = []
    for handle in live:
        handle.action = fired.append  # replaced for observability
        handle.args = (handle.time,)
    engine.run()
    assert fired == [1000.0, 1001.0, 1002.0, 1003.0]


def test_compaction_preserves_tie_order():
    engine = Engine()
    fired = []
    keep = [engine.schedule(1.0, fired.append, i) for i in range(10)]
    corpses = [engine.schedule(1.0, fired.append, 100 + i) for i in range(300)]
    for handle in corpses:
        handle.cancel()
    engine.run()
    assert fired == list(range(10))
    assert keep[0].cancelled is False


def test_events_scheduled_during_run_fire():
    engine = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(0.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_max_events_bounds_execution():
    engine = Engine()
    count = [0]

    def recur():
        count[0] += 1
        engine.schedule(1.0, recur)

    engine.schedule(0.0, recur)
    engine.run(max_events=10)
    assert count[0] == 10


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False


def test_events_fired_counter():
    engine = Engine()
    for i in range(5):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_fired == 5


def test_drain_discards_pending():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "x")
    engine.drain()
    engine.run()
    assert fired == []


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(1.0, lambda: engine.schedule(0.0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [1.0]


def test_engine_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1
