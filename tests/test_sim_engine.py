"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.events import PRIORITY_EARLY, PRIORITY_LATE


def test_schedule_and_run_fires_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(2.0, fired.append, "b")
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(3.0, fired.append, "c")
    engine.run()
    assert fired == ["a", "b", "c"]
    assert engine.now == 3.0


def test_equal_time_ties_break_by_priority_then_insertion():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "normal-1")
    engine.schedule(1.0, fired.append, "late", priority=PRIORITY_LATE)
    engine.schedule(1.0, fired.append, "early", priority=PRIORITY_EARLY)
    engine.schedule(1.0, fired.append, "normal-2")
    engine.run()
    assert fired == ["early", "normal-1", "normal-2", "late"]


def test_clock_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(5.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [5.5]


def test_run_until_stops_before_later_events():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(10.0, fired.append, "b")
    engine.run(until=5.0)
    assert fired == ["a"]
    assert engine.now == 5.0  # clock advanced to `until` like YACSIM
    engine.run()
    assert fired == ["a", "b"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(5.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(1.0, fired.append, "x")
    engine.schedule(2.0, fired.append, "y")
    handle.cancel()
    engine.run()
    assert fired == ["y"]


def test_events_scheduled_during_run_fire():
    engine = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(0.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == 3.0


def test_max_events_bounds_execution():
    engine = Engine()
    count = [0]

    def recur():
        count[0] += 1
        engine.schedule(1.0, recur)

    engine.schedule(0.0, recur)
    engine.run(max_events=10)
    assert count[0] == 10


def test_step_returns_false_when_empty():
    engine = Engine()
    assert engine.step() is False


def test_events_fired_counter():
    engine = Engine()
    for i in range(5):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_fired == 5


def test_drain_discards_pending():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "x")
    engine.drain()
    engine.run()
    assert fired == []


def test_zero_delay_event_fires_at_current_time():
    engine = Engine()
    times = []
    engine.schedule(1.0, lambda: engine.schedule(0.0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [1.0]


def test_engine_not_reentrant():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1
