"""Tests for the routing plane: routers, owner sets, and the two-plane split.

Covers the :mod:`repro.runtime.routing` router family (passthrough
identity, JSQ(d) queue choice, weighted-power-of-d limp discovery, the
registry), the assignment-plane owner-set machinery
(:mod:`repro.placement.replicated`, :func:`~repro.core.movement.diff_owner_sets`,
:meth:`~repro.core.anu.ANUPlacement.locate_owner_set`), and the wiring of
both planes through the queueing harness.
"""

import numpy as np
import pytest

from repro import ClusterConfig, ClusterSimulation, SyntheticConfig, \
    generate_synthetic, paper_servers
from repro.core.anu import ANUPlacement
from repro.core.hashing import hash_to_choice, hash_to_distinct_choices
from repro.core.movement import Move, diff_assignment, diff_owner_sets
from repro.placement import (
    ANUPolicy,
    ReplicatedPolicy,
    derive_owner_set,
    derive_owner_sets,
    normalize_owner_set,
    normalize_owner_sets,
    validate_owner_sets,
)
from repro.runtime.routing import (
    ROUTER_FACTORIES,
    JSQRouter,
    SingleOwnerRouter,
    WeightedPowerOfDRouter,
    make_router,
)
from repro.runtime.telemetry import CallbackSink

SERVERS = [f"s{i}" for i in range(6)]
FILESETS = [f"fs{i:04d}" for i in range(200)]


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
def test_single_owner_router_is_pure_slot_zero():
    router = SingleOwnerRouter()
    # Never bound, never draws, never reads a queue.
    for candidates in (["a"], ["a", "b"], ["c", "a", "b"]):
        assert router.choose("fs", candidates, lambda s: 99) == 0


def test_jsq_picks_shortest_queue_with_slot_order_ties():
    router = JSQRouter(d=3)
    queues = {"a": 4, "b": 1, "c": 1}
    # d >= candidate count: no sampling, no rng needed.
    assert router.choose("fs", ["a", "b", "c"], queues.__getitem__) == 1
    # Tie between b and c resolves to the lower slot.
    queues = {"a": 1, "b": 1, "c": 0}
    assert router.choose("fs", ["a", "b", "c"], queues.__getitem__) == 2


def test_jsq_sampling_requires_bound_stream():
    router = JSQRouter(d=2)
    with pytest.raises(RuntimeError):
        router.choose("fs", ["a", "b", "c"], lambda s: 0)
    router.bind(np.random.default_rng(0))
    idx = router.choose("fs", ["a", "b", "c"], lambda s: 0)
    assert idx in (0, 1, 2)


def test_jsq_sampling_is_deterministic_per_stream():
    def picks(seed):
        router = JSQRouter(d=2)
        router.bind(np.random.default_rng(seed))
        return [
            router.choose("fs", ["a", "b", "c", "d"], lambda s: 0)
            for _ in range(50)
        ]

    assert picks(7) == picks(7)
    assert picks(7) != picks(8)


def test_weighted_router_discovers_limp_from_latency():
    """With equal queues, the router steers away from the server whose
    observed completions are slow — limp discovery from latency alone."""
    router = WeightedPowerOfDRouter(d=2)
    for _ in range(10):
        router.observe("slow", 5.0)
        router.observe("fast", 0.1)
    idx = router.choose("fs", ["slow", "fast"], lambda s: 3)
    assert idx == 1


def test_weighted_router_explores_unobserved_servers_first():
    router = WeightedPowerOfDRouter(d=2)
    router.observe("seen", 0.5)
    # "fresh" has no EWMA yet -> scores as infinitely fast.
    assert router.choose("fs", ["seen", "fresh"], lambda s: 1) == 1


def test_weighted_router_ewma_folds_observations():
    router = WeightedPowerOfDRouter(d=2, decay=0.5)
    router.observe("a", 1.0)
    router.observe("a", 3.0)
    assert router._ewma["a"] == pytest.approx(2.0)


def test_router_registry_round_trip():
    for name in ROUTER_FACTORIES:
        router = make_router(name)
        assert router.name == name
        # Factories build fresh instances (routers are stateful).
        assert make_router(name) is not router
    with pytest.raises(ValueError):
        make_router("nope")


def test_router_validation():
    with pytest.raises(ValueError):
        JSQRouter(d=0)
    with pytest.raises(ValueError):
        WeightedPowerOfDRouter(decay=0.0)


# ----------------------------------------------------------------------
# Distinct hashing
# ----------------------------------------------------------------------
def test_distinct_choices_are_distinct_and_deterministic():
    for name in FILESETS:
        picks = hash_to_distinct_choices(name, 3, 6)
        assert len(picks) == len(set(picks)) == 3
        assert picks == hash_to_distinct_choices(name, 3, 6)


def test_distinct_choices_first_draw_matches_classic_hash():
    for name in FILESETS:
        assert hash_to_distinct_choices(name, 2, 8)[0] == hash_to_choice(
            name, 0, 8
        )


def test_distinct_choices_clamp_to_population():
    assert sorted(hash_to_distinct_choices("x", 10, 4)) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Owner sets (assignment plane)
# ----------------------------------------------------------------------
def test_derive_owner_sets_r1_is_identity():
    primary = {name: SERVERS[i % 6] for i, name in enumerate(FILESETS)}
    sets = derive_owner_sets(primary, SERVERS, 1)
    assert sets == {name: (owner,) for name, owner in primary.items()}


def test_derive_owner_sets_slot_zero_is_primary():
    primary = {name: SERVERS[i % 6] for i, name in enumerate(FILESETS)}
    sets = derive_owner_sets(primary, SERVERS, 3)
    for name, owners in sets.items():
        assert owners[0] == primary[name]
        assert len(owners) == len(set(owners)) == 3
        assert set(owners) <= set(SERVERS)
    validate_owner_sets(sets, FILESETS, SERVERS, replication=3)


def test_derive_owner_set_single_matches_bulk():
    primary = {name: SERVERS[i % 6] for i, name in enumerate(FILESETS)}
    bulk = derive_owner_sets(primary, SERVERS, 2)
    for name in FILESETS:
        assert bulk[name] == derive_owner_set(
            name, primary[name], sorted(SERVERS), 2
        )


def test_anu_locate_owner_set_slot_zero_matches_locate():
    placement = ANUPlacement(SERVERS)
    for name in FILESETS:
        owners = placement.locate_owner_set(name, 3)
        assert owners[0] == placement.locate(name)
        assert len(owners) == len(set(owners)) == 3


def test_replicated_policy_wraps_transparently():
    base = ANUPolicy()
    wrapped = ReplicatedPolicy(ANUPolicy(), 2)
    assert wrapped.name == "anu+r2"
    a = base.initial_assignment(FILESETS, SERVERS)
    b = wrapped.initial_assignment(FILESETS, SERVERS)
    assert a == b
    sets = wrapped.owner_sets(b, SERVERS)
    for name, owners in sets.items():
        assert owners[0] == b[name]
        assert len(owners) == 2
    with pytest.raises(ValueError):
        ReplicatedPolicy(ANUPolicy(), 0)


def test_owner_set_normalization_and_validation():
    assert normalize_owner_set("a") == ("a",)
    assert normalize_owner_set(("a", "b")) == ("a", "b")
    with pytest.raises(ValueError):
        normalize_owner_set(())
    with pytest.raises(ValueError):
        normalize_owner_set(("a", "a"))
    assert normalize_owner_sets({"fs": "a"}) == {"fs": ("a",)}
    with pytest.raises(ValueError):
        validate_owner_sets({"fs": ("ghost",)}, ["fs"], ["a"])


# ----------------------------------------------------------------------
# Slot-wise diffs
# ----------------------------------------------------------------------
def test_diff_owner_sets_equals_diff_assignment_for_str_maps():
    old = {"f1": "a", "f2": "b", "f3": "c"}
    new = {"f1": "a", "f2": "c", "f3": "a"}
    assert diff_owner_sets(old, new) == diff_assignment(old, new)


def test_diff_owner_sets_emits_slot_moves():
    old = {"f1": ("a", "b")}
    new = {"f1": ("a", "c")}
    diff = diff_owner_sets(old, new)
    assert diff.moves == (Move("f1", "b", "c", slot=1),)
    # A brand-new replica slot appears as a move from nowhere.
    grown = diff_owner_sets({"f1": ("a",)}, {"f1": ("a", "c")})
    assert grown.moves == (Move("f1", None, "c", slot=1),)


# ----------------------------------------------------------------------
# Harness wiring
# ----------------------------------------------------------------------
def _small_trace(seed=3):
    return generate_synthetic(
        SyntheticConfig(n_filesets=20, n_requests=1200, duration=400.0,
                        seed=seed)
    )


def test_cluster_r1_explicit_router_is_byte_identical():
    """SingleOwnerRouter + r=1 reproduces the default dispatch exactly."""
    trace = _small_trace()
    config = ClusterConfig(servers=paper_servers(), seed=7)
    base = ClusterSimulation(config, ANUPolicy(), trace).run()
    routed = ClusterSimulation(
        config, ANUPolicy(), trace,
        router=make_router("single"), replication=1,
    ).run()
    assert routed.mean_latency == base.mean_latency
    assert routed.completed == base.completed
    assert routed.utilization == base.utilization
    assert routed.final_assignment == base.final_assignment


def test_cluster_routed_dispatch_targets_owner_set_members():
    """Every dispatched request lands on a member of its file set's
    owner set, the telemetry record carries (router, replica), and no
    request is lost."""
    trace = _small_trace()
    sim_box = {}
    dispatches = []

    def _on_record(record):
        if record.kind != "dispatch":
            return
        owners = sim_box["sim"].owner_sets()[record.fileset]
        assert record.server in owners
        assert owners[record.replica] == record.server
        assert record.router == "jsq2"
        dispatches.append(record)

    sim = ClusterSimulation(
        ClusterConfig(servers=paper_servers(), seed=7),
        ReplicatedPolicy(ANUPolicy(), 2), trace,
        telemetry=CallbackSink(_on_record),
        router=make_router("jsq2"), replication=2,
    )
    sim_box["sim"] = sim
    result = sim.run()
    assert sum(result.completed.values()) == len(trace)
    assert len(dispatches) >= len(trace)
    # The router actually used the replica plane, not just slot 0.
    assert {r.replica for r in dispatches} == {0, 1}


def test_cluster_owner_sets_view_shapes():
    trace = _small_trace()
    sim = ClusterSimulation(
        ClusterConfig(servers=paper_servers(), seed=7),
        ANUPolicy(), trace, replication=2,
    )
    for name, owners in sim.owner_sets().items():
        assert owners[0] == sim.filesets[name].owner
        assert len(owners) == len(set(owners)) == 2
