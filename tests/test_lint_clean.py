"""The repository lints itself: a dirty tree is a failing test.

This is the pytest wiring for ``repro-lint`` — the same gate CI runs,
enforced locally on every ``pytest`` invocation so a violation can never
land between CI runs.
"""

import pathlib

from repro.lint import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LINTED_TREES = ("src", "tests", "benchmarks", "examples")


def test_repository_is_lint_clean():
    targets = [REPO_ROOT / tree for tree in LINTED_TREES if (REPO_ROOT / tree).is_dir()]
    findings = lint_paths(targets)
    rendered = "\n".join(d.render() for d in findings)
    assert findings == [], f"repro-lint found violations:\n{rendered}"
