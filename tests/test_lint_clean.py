"""The repository lints itself: a dirty tree is a failing test.

This is the pytest wiring for ``repro-lint`` — the same gate CI runs,
enforced locally on every ``pytest`` invocation so a violation can never
land between CI runs.  All four trees are linted; what differs per tree
is the *rule set*, centralized in :mod:`repro.lint.policy`:

========== =========================================================
tree       excluded rules (everything else applies)
========== =========================================================
src        none — production code gets the full catalogue
examples   none — examples are copied verbatim; they must model the
           same discipline as production code
tests      RPL001/RPL002 (tests seed ad-hoc generators on purpose),
           RPL004 (float literals in expected values), RPL009
           (fixtures monkeypatch globals)
benchmarks same as tests — harness code, not simulation code
========== =========================================================

The whole-program rules (RPL101-110, including the concurrency-safety
layer RPL107-110 that guards ``repro.sweep`` and the parallel linter
itself) run wherever package files are in the lint set and are never
excluded by tree: they analyze ``src/repro`` itself, so the tree
containing the *entry path* is irrelevant.
"""

import pathlib

from repro.lint import lint_paths
from repro.lint.policy import EXCLUSIONS, excluded_rules, tree_of

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
LINTED_TREES = ("src", "tests", "benchmarks", "examples")


def test_repository_is_lint_clean():
    targets = [REPO_ROOT / tree for tree in LINTED_TREES if (REPO_ROOT / tree).is_dir()]
    findings = lint_paths(targets)
    rendered = "\n".join(d.render() for d in findings)
    assert findings == [], f"repro-lint found violations:\n{rendered}"


def test_every_tree_has_an_exclusion_policy():
    for tree in LINTED_TREES:
        assert tree in EXCLUSIONS, f"no lint policy declared for {tree}/"


def test_production_trees_get_the_full_catalogue():
    assert EXCLUSIONS["src"] == frozenset()
    assert EXCLUSIONS["examples"] == frozenset()


def test_flow_rules_are_never_excluded():
    for tree, excluded in EXCLUSIONS.items():
        flow = {r for r in excluded if r.startswith("RPL1")}
        assert not flow, f"{tree}: whole-program rules cannot be tree-excluded"


def test_path_to_tree_resolution():
    assert tree_of("src/repro/core/interval.py") == "src"
    assert tree_of("tests/test_interval.py") == "tests"
    assert tree_of(str(REPO_ROOT / "benchmarks" / "conftest.py")) == "benchmarks"
    assert tree_of("/tmp/scratch/snippet.py") == "other"
    assert "RPL004" in excluded_rules("tests/test_interval.py")
    assert excluded_rules("src/repro/core/interval.py") == frozenset()
