"""Tests for the two-choices placement baseline."""

import collections

import pytest

from repro.placement import TwoChoicePolicy
from repro.placement.base import validate_assignment
from repro.theory import normalized_max_load

SERVERS = [f"s{i}" for i in range(8)]
FILESETS = [f"fs{i:04d}" for i in range(800)]


def test_deterministic():
    pol = TwoChoicePolicy()
    assert pol.initial_assignment(FILESETS, SERVERS) == pol.initial_assignment(
        FILESETS, SERVERS
    )


def test_complete_and_live():
    pol = TwoChoicePolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    validate_assignment(a, FILESETS, SERVERS)


def test_better_balanced_than_single_choice():
    """The two-choices max load beats simple randomization's."""
    from repro.placement import SimpleRandomPolicy

    two = TwoChoicePolicy().initial_assignment(FILESETS, SERVERS)
    one = SimpleRandomPolicy().initial_assignment(FILESETS, SERVERS)

    def max_norm(assignment):
        counts = collections.Counter(assignment.values())
        return normalized_max_load([counts.get(s, 0) for s in SERVERS])

    assert max_norm(two) < max_norm(one)
    assert max_norm(two) < 1.1  # very tight at m/n = 100


def test_weights_shift_counts_toward_fast_servers():
    pol = TwoChoicePolicy()
    pol.grant_weights({s: (9.0 if s == "s0" else 1.0) for s in SERVERS})
    a = pol.initial_assignment(FILESETS, SERVERS)
    counts = collections.Counter(a.values())
    assert counts["s0"] > 2 * max(counts[s] for s in SERVERS if s != "s0") * 0.9


def test_invalid_weights_rejected():
    pol = TwoChoicePolicy()
    with pytest.raises(ValueError):
        pol.grant_weights({"s0": 0.0})


def test_no_servers_rejected():
    with pytest.raises(ValueError):
        TwoChoicePolicy().initial_assignment(FILESETS, [])


def test_candidates_are_distinct_even_where_rounds_collide():
    """Regression: independent hash rounds collapsed d=2 to d=1.

    ``_candidates`` used to take rounds 0 and 1 of ``hash_to_choice`` as
    its two draws; for roughly 1/n of names both rounds land on the same
    server, silently degrading those names to single-choice placement.
    The distinct sampler must keep both choices real exactly where the
    old scheme collided.
    """
    from repro.core.hashing import hash_to_choice

    pol = TwoChoicePolicy()
    ordered = sorted(SERVERS)
    n = len(ordered)
    collided = [
        name for name in FILESETS
        if hash_to_choice(name, 0, n, pol.namespace)
        == hash_to_choice(name, 1, n, pol.namespace)
    ]
    # The regression is only meaningful if the old scheme actually
    # collided somewhere in this universe (expected ~100 of 800 at n=8).
    assert collided
    for name in collided:
        a, b = pol._candidates(name, ordered)
        assert a != b
    # Degenerate one-server fleet: the only server, twice.
    assert pol._candidates("fs0000", ["only"]) == ("only", "only")


def test_membership_change_moves_only_orphans():
    pol = TwoChoicePolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    survivors = [s for s in SERVERS if s != "s3"]
    b = pol.on_membership_change(FILESETS, survivors, a)
    validate_assignment(b, FILESETS, survivors)
    for name in FILESETS:
        if a[name] != "s3":
            assert b[name] == a[name]


def test_static_update():
    pol = TwoChoicePolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    from repro.placement.base import TuningContext
    from repro.core.tuning import ServerReport

    import numpy as np

    ctx = TuningContext(
        time=1.0, filesets=FILESETS, servers=SERVERS, assignment=a,
        reports=[ServerReport(s, 0.1, 10) for s in SERVERS],
        rng=np.random.default_rng(0),
    )
    assert pol.update(ctx) is None


def test_runner_integration():
    from repro.experiments.runner import run_policy
    from repro.cluster import ClusterConfig, paper_servers
    from repro.workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(n_filesets=40, n_requests=2000, duration=500.0)
    )
    cfg = ClusterConfig(servers=paper_servers(), seed=0)
    plain = run_policy("two-choice", trace, cfg)
    weighted = run_policy("two-choice-weighted", trace, cfg)
    assert plain.total_requests == weighted.total_requests == 2000
    # The weighted variant loads fast servers more at placement time.
    assert weighted.completed["server4"] >= plain.completed["server4"]
