"""Tests for the DFSTrace-like synthesizer — these assertions keep the
documented substitution honest (see DESIGN.md §2)."""

import numpy as np
import pytest

from repro.workloads.dfstrace import (
    DFSTraceLikeConfig,
    activity_profile,
    generate_dfstrace_like,
)


def test_defaults_match_published_slice():
    cfg = DFSTraceLikeConfig()
    assert cfg.n_filesets == 21
    assert cfg.n_requests == 112_590
    assert cfg.duration == 3600.0


def test_exact_request_count():
    trace = generate_dfstrace_like(DFSTraceLikeConfig())
    assert len(trace) == 112_590
    assert trace.n_filesets == 21


def test_activity_ratio_at_least_100x():
    """"The most active file set has more than one hundred times as many
    requests as many of the least active file sets."""
    trace = generate_dfstrace_like(DFSTraceLikeConfig())
    counts = trace.counts_by_fileset()
    ordered = sorted(counts.values())
    assert ordered[-1] >= 100 * ordered[0]


def test_activity_profile_spread():
    cfg = DFSTraceLikeConfig(activity_ratio=150.0)
    w = activity_profile(cfg)
    assert w.sum() == pytest.approx(1.0)
    assert w[0] / w[-1] >= 150.0 * 0.99


def test_profile_monotone_decreasing():
    w = activity_profile(DFSTraceLikeConfig())
    assert np.all(np.diff(w) <= 1e-15)


def test_bursty_nonstationary():
    """Per-epoch request counts vary far more than a stationary Poisson
    process would allow."""
    cfg = DFSTraceLikeConfig(seed=11)
    trace = generate_dfstrace_like(cfg)
    # Take the most active file set; examine its per-epoch counts.
    counts = trace.counts_by_fileset()
    hot = max(counts, key=counts.get)
    hot_id = trace.fileset_names.index(hot)
    epoch_len = cfg.duration / cfg.epochs
    times = trace.times[trace.fileset_ids == hot_id]
    per_epoch = np.bincount((times // epoch_len).astype(int), minlength=cfg.epochs)
    mean = per_epoch.mean()
    # Poisson would give var ~ mean; lognormal modulation inflates it a lot.
    assert per_epoch.var() > 3 * mean


def test_times_sorted_and_in_range():
    trace = generate_dfstrace_like(DFSTraceLikeConfig(n_requests=5000, epochs=6))
    assert np.all(np.diff(trace.times) >= 0)
    assert trace.times.min() >= 0.0
    assert trace.times.max() < trace.duration


def test_deterministic_by_seed():
    cfg = DFSTraceLikeConfig(n_requests=3000, seed=4)
    a = generate_dfstrace_like(cfg)
    b = generate_dfstrace_like(cfg)
    assert np.array_equal(a.times, b.times)
    assert np.array_equal(a.fileset_ids, b.fileset_ids)


def test_stochastic_cost_mode():
    cfg = DFSTraceLikeConfig(n_requests=5000, stochastic_cost=True,
                             request_cost=0.1)
    trace = generate_dfstrace_like(cfg)
    assert trace.costs.std() > 0
    assert trace.costs.mean() == pytest.approx(0.1, rel=0.15)


def test_config_validation():
    with pytest.raises(ValueError):
        DFSTraceLikeConfig(n_filesets=1)
    with pytest.raises(ValueError):
        DFSTraceLikeConfig(activity_ratio=0.5)
    with pytest.raises(ValueError):
        DFSTraceLikeConfig(epochs=0)


def test_partitioned_along_fileset_boundaries():
    """Every request belongs to exactly one of the 21 file sets (DFSTrace is
    naturally partitioned along workstation boundaries)."""
    trace = generate_dfstrace_like(DFSTraceLikeConfig(n_requests=2000))
    assert set(np.unique(trace.fileset_ids)) <= set(range(21))
