"""Capture seeded golden summaries for the replay-equivalence tests.

Run from the repo root (``PYTHONPATH=src python tests/golden/capture_goldens.py``)
to regenerate ``tests/golden/harness_goldens.json``.  The committed file was
captured from the pre-``repro.runtime`` harnesses (commit 10d9516); the
adapter-based harnesses must reproduce it bit-for-bit, so ONLY regenerate it
for a change that is *intended* to alter simulation behaviour — and say so in
the commit message.

Floats survive the JSON round trip exactly (``json`` serializes via
``float.__repr__``, which is shortest-roundtrip), so equality checks against
the stored values are bit-exact, not approximate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro import (
    ClusterConfig,
    ClusterSimulation,
    FaultSchedule,
    SyntheticConfig,
    generate_synthetic,
    paper_servers,
)
from repro.fs import FsWorkloadConfig, MetadataCluster, generate_operations, populate
from repro.fs.simulation import FullSystemConfig, FullSystemSimulation
from repro.placement.anu_policy import ANUPolicy

GOLDEN_PATH = Path(__file__).with_name("harness_goldens.json")

FS_ROOTS = {f"fs{i}": f"/p{i}" for i in range(6)}
FS_SPEEDS = {f"server{i}": float(2 * i + 1) for i in range(4)}


def series_fingerprint(series) -> dict:
    """Every array in a LatencySeries as JSON-exact lists."""
    return {
        "window": float(series.window),
        "times": series.times.tolist(),
        "mean_latency": {s: series.mean_latency[s].tolist() for s in series.servers},
        "counts": {s: series.counts[s].tolist() for s in series.servers},
    }


def series_hash(series) -> str:
    """Stable digest of the full windowed series (keeps the file small)."""
    blob = json.dumps(series_fingerprint(series), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_cluster(
    seed: int,
    faults: FaultSchedule | None = None,
    telemetry=None,
    router=None,
    replication: int = 1,
):
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=4000, duration=1000.0, seed=seed)
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=120.0, sample_window=60.0, seed=seed
    )
    return ClusterSimulation(
        config, ANUPolicy(), trace, faults, telemetry=telemetry,
        router=router, replication=replication,
    ).run()


def cluster_fault_schedule() -> FaultSchedule:
    """Covers fail, recover, commission and delegate-crash membership paths."""
    return (
        FaultSchedule()
        .fail(300.0, "server2")
        .delegate_crash(420.0)
        .recover(550.0, "server2")
        .commission(700.0, "server5", speed=4.0)
    )


def cluster_golden(result) -> dict:
    return {
        "policy_name": result.policy_name,
        "duration": result.duration,
        "mean_latency": result.mean_latency,
        "total_requests": result.total_requests,
        "completed": result.completed,
        "utilization": result.utilization,
        "moves_started": result.moves_started,
        "moves_completed": result.moves_completed,
        "retries": result.retries,
        "tuning_rounds": result.tuning_rounds,
        "final_assignment": result.final_assignment,
        "ledger": result.ledger.summary(),
        "series_sha256": series_hash(result.series),
    }


def run_full_system(seed: int, telemetry=None, router=None, replication: int = 1):
    workload = FsWorkloadConfig(
        n_operations=1500, duration=900.0, seed=seed, popularity_skew=1.2
    )
    gen_cluster = MetadataCluster(["gen"], FS_ROOTS)
    ops = generate_operations(gen_cluster, workload)
    sim = FullSystemSimulation(
        FullSystemConfig(
            server_speeds=FS_SPEEDS, fileset_roots=FS_ROOTS,
            tuning_interval=120.0, sample_window=60.0,
            mean_op_cost=0.2, seed=seed, replication=replication,
        ),
        ops,
        telemetry=telemetry,
        router=router,
    )
    populate(sim.cluster, workload)
    return sim.run()


def full_system_golden(result) -> dict:
    return {
        "ops_completed": result.ops_completed,
        "ops_failed": result.ops_failed,
        "moves": result.moves,
        "tuning_rounds": result.tuning_rounds,
        "ownership": result.cluster.ownership(),
        "shares": result.cluster.placement.shares(),
        "series_sha256": series_hash(result.series),
    }


def capture() -> dict:
    return {
        "_comment": (
            "Pre-refactor golden summaries; see capture_goldens.py. "
            "Regenerate only for intentional behaviour changes."
        ),
        "cluster_anu_seed7": cluster_golden(run_cluster(7)),
        "cluster_anu_faults_seed5": cluster_golden(
            run_cluster(5, cluster_fault_schedule())
        ),
        "full_system_seed11": full_system_golden(run_full_system(11)),
    }


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
