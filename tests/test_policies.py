"""Unit tests for all placement policies behind the shared protocol."""

import collections

import numpy as np
import pytest

from repro.core.tuning import ServerReport
from repro.placement import (
    ANUPolicy,
    ConsistentHashPolicy,
    ConsistentHashRing,
    DecentralizedANUPolicy,
    PrescientPolicy,
    RoundRobinPolicy,
    SimpleRandomPolicy,
    TuningContext,
    lpt_assign,
    predicted_makespan,
    validate_assignment,
)

SERVERS = ["s0", "s1", "s2", "s3", "s4"]
FILESETS = [f"fs{i:03d}" for i in range(100)]


def make_context(policy_assignment, reports=None, oracle=None, speeds=None,
                 previous=None):
    if reports is None:
        reports = [ServerReport(s, 0.01, 10) for s in SERVERS]
    return TuningContext(
        time=120.0,
        filesets=FILESETS,
        servers=SERVERS,
        assignment=policy_assignment,
        reports=reports,
        previous_reports=previous,
        server_speeds=speeds,
        oracle_demand=oracle,
        rng=np.random.default_rng(0),
    )


# ----------------------------------------------------------------------
# validate_assignment
# ----------------------------------------------------------------------
def test_validate_assignment_accepts_complete_live():
    validate_assignment({f: "s0" for f in FILESETS}, FILESETS, SERVERS)


def test_validate_assignment_rejects_missing_and_dead():
    with pytest.raises(ValueError):
        validate_assignment({}, FILESETS, SERVERS)
    with pytest.raises(ValueError):
        validate_assignment({f: "ghost" for f in FILESETS}, FILESETS, SERVERS)


# ----------------------------------------------------------------------
# Static policies
# ----------------------------------------------------------------------
def test_simple_random_is_deterministic_and_spread():
    pol = SimpleRandomPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    b = pol.initial_assignment(FILESETS, SERVERS)
    assert a == b
    assert len(set(a.values())) == 5


def test_simple_random_never_updates():
    pol = SimpleRandomPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    assert pol.update(make_context(a)) is None


def test_round_robin_equal_counts():
    pol = RoundRobinPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    counts = collections.Counter(a.values())
    assert all(c == 20 for c in counts.values())


def test_round_robin_counts_within_one_for_uneven():
    pol = RoundRobinPolicy()
    a = pol.initial_assignment(FILESETS[:98], SERVERS)
    counts = collections.Counter(a.values())
    assert max(counts.values()) - min(counts.values()) <= 1


def test_static_membership_change_moves_only_orphans():
    pol = SimpleRandomPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    survivors = [s for s in SERVERS if s != "s2"]
    b = pol.on_membership_change(FILESETS, survivors, a)
    for f in FILESETS:
        if a[f] != "s2":
            assert b[f] == a[f]
        else:
            assert b[f] in survivors


# ----------------------------------------------------------------------
# LPT / prescient
# ----------------------------------------------------------------------
def test_lpt_minimizes_weighted_makespan_roughly():
    demand = {f"f{i}": float(i + 1) for i in range(20)}
    speeds = {"fast": 4.0, "slow": 1.0}
    assignment = lpt_assign(demand, speeds)
    ms = predicted_makespan(assignment, demand, speeds)
    total = sum(demand.values())
    lower_bound = total / sum(speeds.values())
    assert ms <= lower_bound * 4 / 3 + max(demand.values())


def test_lpt_deterministic():
    demand = {f"f{i}": 1.0 for i in range(10)}
    speeds = {"a": 1.0, "b": 1.0}
    assert lpt_assign(demand, speeds) == lpt_assign(demand, speeds)


def test_lpt_rejects_bad_speeds():
    with pytest.raises(ValueError):
        lpt_assign({"f": 1.0}, {})
    with pytest.raises(ValueError):
        lpt_assign({"f": 1.0}, {"a": 0.0})


def test_prescient_requires_oracle():
    pol = PrescientPolicy()
    with pytest.raises(RuntimeError):
        pol.initial_assignment(FILESETS, SERVERS)


def test_prescient_initial_balanced_by_demand():
    pol = PrescientPolicy()
    speeds = {s: float(i * 2 + 1) for i, s in enumerate(SERVERS)}
    demand = {f: 1.0 for f in FILESETS}
    pol.grant_oracle(speeds, demand)
    a = pol.initial_assignment(FILESETS, SERVERS)
    counts = collections.Counter(a.values())
    # Counts proportional to speed (1,3,5,7,9)/25 of 100 file sets.
    assert counts["s4"] > counts["s0"]
    assert counts["s4"] == pytest.approx(36, abs=4)


def test_prescient_keeps_configuration_with_hysteresis():
    pol = PrescientPolicy(hysteresis=0.5)
    speeds = {s: 1.0 for s in SERVERS}
    demand = {f: 1.0 for f in FILESETS}
    pol.grant_oracle(speeds, demand)
    a = pol.initial_assignment(FILESETS, SERVERS)
    ctx = make_context(a, oracle=demand, speeds=speeds)
    assert pol.update(ctx) is None


def test_prescient_repacks_on_big_shift():
    pol = PrescientPolicy(hysteresis=0.05)
    speeds = {s: 1.0 for s in SERVERS}
    demand = {f: 1.0 for f in FILESETS}
    pol.grant_oracle(speeds, demand)
    a = pol.initial_assignment(FILESETS, SERVERS)
    # New oracle: all load lands on the file sets currently packed onto one
    # server — spreading them improves makespan ~5x, far beyond hysteresis.
    hot_server = a["fs000"]
    shifted = {
        f: (10.0 if a[f] == hot_server else 0.001) for f in FILESETS
    }
    ctx = make_context(a, oracle=shifted, speeds=speeds)
    b = pol.update(ctx)
    assert b is not None
    validate_assignment(b, FILESETS, SERVERS)
    # The hot file sets were spread out.
    hot_after = {b[f] for f in FILESETS if shifted[f] == 10.0}
    assert len(hot_after) > 1


def test_prescient_no_oracle_in_context_means_no_change():
    pol = PrescientPolicy()
    speeds = {s: 1.0 for s in SERVERS}
    pol.grant_oracle(speeds, {f: 1.0 for f in FILESETS})
    a = pol.initial_assignment(FILESETS, SERVERS)
    assert pol.update(make_context(a, oracle=None, speeds=speeds)) is None


def test_prescient_membership_change_repacks():
    pol = PrescientPolicy()
    speeds = {s: 1.0 for s in SERVERS}
    pol.grant_oracle(speeds, {f: 1.0 for f in FILESETS})
    a = pol.initial_assignment(FILESETS, SERVERS)
    survivors = SERVERS[:-1]
    b = pol.on_membership_change(FILESETS, survivors, a)
    validate_assignment(b, FILESETS, survivors)


def test_prescient_hysteresis_validation():
    with pytest.raises(ValueError):
        PrescientPolicy(hysteresis=-0.1)


# ----------------------------------------------------------------------
# ANU policy adapter
# ----------------------------------------------------------------------
def test_anu_policy_initial_and_update_cycle():
    pol = ANUPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    validate_assignment(a, FILESETS, SERVERS)
    hot = [ServerReport("s0", 1.0, 100)] + [
        ServerReport(s, 0.01, 100) for s in SERVERS[1:]
    ]
    b = pol.update(make_context(a, reports=hot))
    assert b is not None
    validate_assignment(b, FILESETS, SERVERS)
    counts_a = collections.Counter(a.values())
    counts_b = collections.Counter(b.values())
    assert counts_b["s0"] < counts_a["s0"]


def test_anu_policy_no_change_when_balanced():
    pol = ANUPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    balanced = [ServerReport(s, 0.01, 100) for s in SERVERS]
    assert pol.update(make_context(a, reports=balanced)) is None


def test_anu_policy_update_before_init_rejected():
    pol = ANUPolicy()
    with pytest.raises(RuntimeError):
        pol.update(make_context({}))


def test_anu_policy_membership_change_handles_fail_and_join():
    pol = ANUPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    survivors = [s for s in SERVERS if s != "s1"] + ["s9"]
    b = pol.on_membership_change(FILESETS, sorted(survivors), a)
    validate_assignment(b, FILESETS, survivors)
    assert set(pol.placement.servers) == set(survivors)


def test_anu_policy_delegate_failure_discards_history():
    pol = ANUPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    hot = [ServerReport("s0", 1.0, 100)] + [
        ServerReport(s, 0.01, 100) for s in SERVERS[1:]
    ]
    pol.update(make_context(a, reports=hot))
    pol.fail_delegate()
    assert pol.delegate_failed
    pol.update(make_context(a, reports=hot))
    assert not pol.delegate_failed  # consumed by the round


# ----------------------------------------------------------------------
# Decentralized ANU
# ----------------------------------------------------------------------
def test_decentralized_anu_runs_and_balances():
    pol = DecentralizedANUPolicy(rounds_per_interval=2)
    a = pol.initial_assignment(FILESETS, SERVERS)
    hot = [ServerReport("s0", 1.0, 100)] + [
        ServerReport(s, 0.01, 100) for s in SERVERS[1:]
    ]
    b = pol.update(make_context(a, reports=hot))
    assert b is not None
    validate_assignment(b, FILESETS, SERVERS)
    assert pol.exchange_log and pol.exchange_log[0] > 0


def test_decentralized_anu_rejects_bad_rounds():
    with pytest.raises(ValueError):
        DecentralizedANUPolicy(rounds_per_interval=0)


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
def test_ring_locate_deterministic():
    ring = ConsistentHashRing(SERVERS)
    assert ring.locate("fs1") == ring.locate("fs1")


def test_ring_minimal_movement_on_removal():
    ring = ConsistentHashRing(SERVERS, vnodes=128)
    before = {f: ring.locate(f) for f in FILESETS}
    ring.remove_server("s2")
    after = {f: ring.locate(f) for f in FILESETS}
    for f in FILESETS:
        if before[f] != "s2":
            assert after[f] == before[f]


def test_ring_weights_shift_mass():
    many = [f"k{i}" for i in range(3000)]
    ring = ConsistentHashRing(["a", "b"], vnodes=200, weights={"a": 3.0, "b": 1.0})
    counts = collections.Counter(ring.locate(k) for k in many)
    assert counts["a"] > 1.5 * counts["b"]


def test_ring_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(SERVERS, vnodes=0)
    ring = ConsistentHashRing(["a"])
    with pytest.raises(ValueError):
        ring.remove_server("zz")
    with pytest.raises(ValueError):
        ring.add_server("a")
    with pytest.raises(ValueError):
        ring.remove_server("a")  # cannot empty the ring


def test_consistent_hash_policy_membership():
    pol = ConsistentHashPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    validate_assignment(a, FILESETS, SERVERS)
    survivors = [s for s in SERVERS if s != "s0"]
    b = pol.on_membership_change(FILESETS, survivors, a)
    validate_assignment(b, FILESETS, survivors)
    moved = [f for f in FILESETS if a[f] != b[f] and a[f] != "s0"]
    assert not moved  # consistent hashing: only orphans move


def test_consistent_hash_policy_static():
    pol = ConsistentHashPolicy()
    a = pol.initial_assignment(FILESETS, SERVERS)
    assert pol.update(make_context(a)) is None


def test_anu_share_history_records_region_evolution():
    """The share-history log captures the region dynamics of Figures 3-4:
    every entry is half-occupancy-consistent and timestamps increase."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(n_filesets=50, n_requests=6000, duration=1200.0,
                        seed=6)
    )
    pol = ANUPolicy()
    ClusterSimulation(
        ClusterConfig(servers=paper_servers(), seed=0), pol, trace
    ).run()
    assert pol.share_history  # tuning happened
    times = [t for t, _ in pol.share_history]
    assert times == sorted(times)
    for _, shares in pol.share_history:
        assert sum(shares.values()) == pytest.approx(0.5, abs=1e-9)
    # The slow server's region shrank from its uniform start.
    final = pol.share_history[-1][1]
    assert final["server0"] < 0.1
