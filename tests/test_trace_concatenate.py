"""Tests for Trace.concatenate (piecewise workload construction)."""

import numpy as np
import pytest

from repro.workloads import SyntheticConfig, Trace, generate_synthetic


def seg(n_requests: int, duration: float, seed: int, n_filesets: int = 10) -> Trace:
    return generate_synthetic(SyntheticConfig(
        n_filesets=n_filesets, n_requests=n_requests, duration=duration,
        seed=seed,
    ))


def test_concatenate_durations_and_counts():
    a, b = seg(100, 50.0, 1), seg(200, 30.0, 2)
    cat = Trace.concatenate([a, b])
    assert len(cat) == 300
    assert cat.duration == 80.0


def test_concatenate_shifts_times():
    a, b = seg(100, 50.0, 1), seg(100, 50.0, 2)
    cat = Trace.concatenate([a, b])
    assert np.all(np.diff(cat.times) >= 0)
    assert cat.times[100] >= 50.0
    np.testing.assert_allclose(cat.times[:100], a.times)
    np.testing.assert_allclose(cat.times[100:], b.times + 50.0)


def test_concatenate_unions_fileset_universe():
    a = Trace(np.array([1.0]), np.array([0]), np.array([0.1]), ["x"], duration=2.0)
    b = Trace(np.array([0.5]), np.array([0]), np.array([0.2]), ["y"], duration=1.0)
    cat = Trace.concatenate([a, b])
    assert cat.fileset_names == ["x", "y"]
    assert cat.counts_by_fileset() == {"x": 1, "y": 1}
    # The 'y' request carries its cost and its shifted time.
    assert cat.times[1] == pytest.approx(2.5)
    assert cat.costs[1] == pytest.approx(0.2)


def test_concatenate_remaps_shared_names():
    a, b = seg(500, 20.0, 3), seg(500, 20.0, 4)
    cat = Trace.concatenate([a, b])
    counts_a = a.counts_by_fileset()
    counts_b = b.counts_by_fileset()
    merged = cat.counts_by_fileset()
    for name in merged:
        assert merged[name] == counts_a.get(name, 0) + counts_b.get(name, 0)


def test_concatenate_single_and_empty():
    a = seg(100, 10.0, 5)
    cat = Trace.concatenate([a])
    assert len(cat) == 100
    with pytest.raises(ValueError):
        Trace.concatenate([])


def test_concatenate_with_empty_segment():
    a = seg(100, 10.0, 6)
    empty = Trace(np.empty(0), np.empty(0, dtype=int), np.empty(0),
                  a.fileset_names, duration=5.0)
    cat = Trace.concatenate([empty, a])
    assert len(cat) == 100
    assert cat.duration == 15.0
    assert cat.times.min() >= 5.0
