"""Unit tests for deterministic named random streams."""

import numpy as np
import pytest

from repro.sim import StreamFactory, exponential, uniform


def test_same_seed_same_name_same_stream():
    a = StreamFactory(42).stream("arrivals").random(10)
    b = StreamFactory(42).stream("arrivals").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    a = StreamFactory(42).stream("arrivals").random(10)
    b = StreamFactory(42).stream("mover").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = StreamFactory(1).stream("x").random(10)
    b = StreamFactory(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_order_independent():
    """Creating streams in a different order must not change their draws."""
    f1 = StreamFactory(7)
    first = f1.stream("a").random(5)
    _ = f1.stream("b").random(5)

    f2 = StreamFactory(7)
    _ = f2.stream("b").random(5)
    second = f2.stream("a").random(5)
    assert np.array_equal(first, second)


def test_spawn_namespaces_children():
    root = StreamFactory(9)
    child1 = root.spawn("cluster")
    child2 = root.spawn("workload")
    a = child1.stream("x").random(5)
    b = child2.stream("x").random(5)
    root_x = root.stream("x").random(5)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, root_x)


def test_spawn_deterministic():
    a = StreamFactory(9).spawn("c").stream("x").random(5)
    b = StreamFactory(9).spawn("c").stream("x").random(5)
    assert np.array_equal(a, b)


def test_invalid_seed_rejected():
    with pytest.raises(ValueError):
        StreamFactory(-1)
    with pytest.raises(ValueError):
        StreamFactory("seed")  # type: ignore[arg-type]


def test_exponential_helper():
    rng = StreamFactory(3).stream("e")
    draws = [exponential(rng, 2.0) for _ in range(2000)]
    assert all(d >= 0 for d in draws)
    assert np.mean(draws) == pytest.approx(2.0, rel=0.1)
    with pytest.raises(ValueError):
        exponential(rng, 0.0)


def test_uniform_helper():
    rng = StreamFactory(3).stream("u")
    draws = [uniform(rng, 5.0, 10.0) for _ in range(1000)]
    assert all(5.0 <= d < 10.0 for d in draws)
    with pytest.raises(ValueError):
        uniform(rng, 10.0, 5.0)


def test_uniform_degenerate_interval():
    rng = StreamFactory(3).stream("u")
    assert uniform(rng, 4.0, 4.0) == 4.0
