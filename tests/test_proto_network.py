"""Unit tests for the simulated message network."""

import numpy as np
import pytest

from repro.proto.network import Network, NetworkConfig, NetworkError
from repro.sim import Engine


def make(loss: float = 0.0, seed: int = 0) -> tuple[Engine, Network]:
    engine = Engine()
    net = Network(engine, np.random.default_rng(seed),
                  NetworkConfig(min_latency=0.001, max_latency=0.01, loss=loss))
    return engine, net


def test_config_validation():
    with pytest.raises(NetworkError):
        NetworkConfig(min_latency=0.5, max_latency=0.1)
    with pytest.raises(NetworkError):
        NetworkConfig(loss=1.0)
    with pytest.raises(NetworkError):
        NetworkConfig(min_latency=-1.0)


def test_send_delivers_within_latency_bounds():
    engine, net = make()
    inbox = []
    net.register("a", lambda src, msg: inbox.append((engine.now, src, msg)))
    net.register("b", lambda src, msg: None)
    net.send("b", "a", "hello")
    engine.run()
    assert len(inbox) == 1
    t, src, msg = inbox[0]
    assert 0.001 <= t <= 0.01
    assert src == "b" and msg == "hello"


def test_unknown_endpoints_rejected():
    _, net = make()
    net.register("a", lambda s, m: None)
    with pytest.raises(NetworkError):
        net.send("a", "ghost", "x")
    with pytest.raises(NetworkError):
        net.send("ghost", "a", "x")
    with pytest.raises(NetworkError):
        net.register("a", lambda s, m: None)


def test_broadcast_excludes_self_by_default():
    engine, net = make()
    boxes = {n: [] for n in "abc"}
    for n in "abc":
        net.register(n, (lambda n: lambda s, m: boxes[n].append(m))(n))
    net.broadcast("a", "ping")
    engine.run()
    assert boxes["a"] == []
    assert boxes["b"] == ["ping"] and boxes["c"] == ["ping"]
    net.broadcast("a", "pong", include_self=True)
    engine.run()
    assert boxes["a"] == ["pong"]


def test_down_node_drops_messages():
    engine, net = make()
    inbox = []
    net.register("a", lambda s, m: inbox.append(m))
    net.register("b", lambda s, m: None)
    net.set_down("a")
    net.send("b", "a", "lost")
    engine.run()
    assert inbox == []
    assert net.dropped == 1
    net.set_up("a")
    net.send("b", "a", "found")
    engine.run()
    assert inbox == ["found"]


def test_loss_rate_roughly_honoured():
    engine, net = make(loss=0.3, seed=42)
    received = []
    net.register("a", lambda s, m: received.append(m))
    net.register("b", lambda s, m: None)
    for i in range(2000):
        net.send("b", "a", i)
    engine.run()
    rate = 1 - len(received) / 2000
    assert rate == pytest.approx(0.3, abs=0.05)


def test_counters():
    engine, net = make()
    net.register("a", lambda s, m: None)
    net.register("b", lambda s, m: None)
    net.send("a", "b", 1)
    net.send("b", "a", 2)
    engine.run()
    assert net.sent == 2
    assert net.delivered == 2
    assert net.dropped == 0


def test_set_down_unknown_rejected():
    _, net = make()
    with pytest.raises(NetworkError):
        net.set_down("ghost")
