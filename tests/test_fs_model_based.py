"""Model-based testing of the metadata cluster.

A hypothesis state machine drives random interleavings of client
operations, checkpoints, delegate retunes, server failures, graceful
decommissions, and commissions against :class:`repro.fs.MetadataCluster`,
comparing observable state to a flat reference model (a dict of existing
paths with a simple flushed/volatile distinction).

Invariants checked after every step:

- every path the model says is durable exists in the cluster;
- no path the model says was never created exists;
- ownership, placement, and in-memory services agree
  (``check_consistency``);
- operations never land on the wrong server (submit() checks owner).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.tuning import ServerReport
from repro.fs import FileSystemClient, MetadataCluster

ROOTS = {f"fs{i}": f"/p{i}" for i in range(6)}
ALL_SERVERS = [f"srv{i}" for i in range(6)]


class ClusterMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.cluster = MetadataCluster(ALL_SERVERS[:3], ROOTS)
        self.client = FileSystemClient(self.cluster, "model-client")
        self.next_server = 3
        self.serial = 0
        # Reference model: path -> "flushed" | "volatile".
        self.files: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Client operations
    # ------------------------------------------------------------------
    @rule(fs=st.integers(min_value=0, max_value=5))
    def create_file(self, fs: int) -> None:
        self.serial += 1
        path = f"/p{fs}/f{self.serial:05d}"
        self.client.create(path)
        self.files[path] = "volatile"

    @rule(fs=st.integers(min_value=0, max_value=5))
    def unlink_some_file(self, fs: int) -> None:
        prefix = f"/p{fs}/"
        victims = [p for p in self.files if p.startswith(prefix)]
        if not victims:
            return
        path = sorted(victims)[0]
        self.client.unlink(path)
        del self.files[path]
        # An unlink after a checkpoint is itself volatile: a crash may
        # resurrect the file.  Track that by re-marking survivors... the
        # simple model instead forgets deletions on crash conservatively:
        # see fail_server, which only asserts durable files exist.

    @rule()
    def checkpoint(self) -> None:
        self.cluster.checkpoint()
        for path in self.files:
            self.files[path] = "flushed"

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------
    @rule(hot=st.integers(min_value=0, max_value=5))
    def retune(self, hot: int) -> None:
        servers = sorted(self.cluster.services)
        hot_server = servers[hot % len(servers)]
        reports = [
            ServerReport(s, 0.8 if s == hot_server else 0.05, 50)
            for s in servers
        ]
        self.cluster.retune(reports)
        # Planned moves flush the source, so every file survives; verified
        # by the invariant below.

    @precondition(lambda self: len(self.cluster.services) > 1)
    @rule(idx=st.integers(min_value=0, max_value=5))
    def fail_server(self, idx: int) -> None:
        servers = sorted(self.cluster.services)
        victim = servers[idx % len(servers)]
        self.cluster.fail_server(victim)
        # Unflushed creations may be lost; drop them from the model (we
        # cannot know which without replicating flush bookkeeping, so the
        # model drops every volatile file — the invariant then checks the
        # surviving durable set, and an over-surviving file is harmless).
        self.files = {
            p: state for p, state in self.files.items() if state == "flushed"
        }

    @precondition(lambda self: len(self.cluster.services) > 1)
    @rule(idx=st.integers(min_value=0, max_value=5))
    def decommission_server(self, idx: int) -> None:
        servers = sorted(self.cluster.services)
        victim = servers[idx % len(servers)]
        self.cluster.remove_server(victim)
        # Graceful: nothing may be lost; model unchanged.

    @precondition(lambda self: self.next_server < len(ALL_SERVERS))
    @rule()
    def commission_server(self) -> None:
        self.cluster.add_server(ALL_SERVERS[self.next_server])
        self.next_server += 1

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def durable_files_exist(self) -> None:
        for path, state in self.files.items():
            if state == "flushed":
                assert self.client.exists(path), f"durable {path} vanished"

    @invariant()
    def cluster_is_consistent(self) -> None:
        self.cluster.check_consistency()

    @invariant()
    def every_fileset_owned_by_live_server(self) -> None:
        live = set(self.cluster.services)
        for fs, owner in self.cluster.ownership().items():
            assert owner in live, f"{fs} owned by dead {owner}"


ClusterMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestClusterModel = ClusterMachine.TestCase
