"""Unit and property tests for ANUPlacement."""

import collections

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ANUPlacement, HashFamily, diff_assignment


def names(n: int, prefix: str = "fs") -> list[str]:
    return [f"{prefix}{i:04d}" for i in range(n)]


def test_locate_is_deterministic():
    p = ANUPlacement(["a", "b", "c"])
    assert p.locate("fs1") == p.locate("fs1")


def test_all_filesets_get_a_live_server():
    p = ANUPlacement(["a", "b", "c", "d", "e"])
    assignment = p.assignment(names(1000))
    assert set(assignment.values()) <= {"a", "b", "c", "d", "e"}
    assert len(assignment) == 1000


def test_initial_assignment_roughly_uniform():
    p = ANUPlacement([f"s{i}" for i in range(5)])
    counts = collections.Counter(p.assignment(names(5000)).values())
    for c in counts.values():
        assert 800 < c < 1200  # 1000 +- 20%


def test_expected_probe_count_is_about_two():
    """Half occupancy => geometric with p=1/2 => mean ~2 probes."""
    p = ANUPlacement([f"s{i}" for i in range(5)])
    rounds = [p.locate_with_rounds(n)[1] for n in names(4000)]
    mean = sum(rounds) / len(rounds)
    assert 1.8 < mean < 2.2


def test_fallback_probability_matches_two_to_minus_k():
    family = HashFamily(max_rounds=3)  # fallback probability 1/8
    p = ANUPlacement([f"s{i}" for i in range(5)], hash_family=family)
    fallbacks = sum(
        1 for n in names(8000) if p.locate_with_rounds(n)[1] == 4
    )
    assert fallbacks / 8000 == pytest.approx(1 / 8, abs=0.02)


def test_share_scaling_shifts_assignment_mass():
    p = ANUPlacement(["a", "b"])
    p.set_shares({"a": 9.0, "b": 1.0})
    counts = collections.Counter(p.assignment(names(4000)).values())
    assert counts["a"] > 3200
    assert counts["b"] < 800


def test_zero_share_server_receives_only_fallbacks():
    family = HashFamily(max_rounds=8)
    p = ANUPlacement(["a", "b"], hash_family=family)
    p.set_shares({"a": 1.0, "b": 0.0})
    counts = collections.Counter(p.assignment(names(4000)).values())
    # b can only be hit by the 2^-8 direct-to-server fallback.
    assert counts.get("b", 0) < 4000 * (2**-8) * 5 + 5


def test_growth_only_captures_not_scrambles():
    """When only server 'a' grows, no file set moves between b and c."""
    p = ANUPlacement(["a", "b", "c"])
    ns = names(3000)
    before = p.assignment(ns)
    shares = p.shares()
    # Shrink a's region, others' ratio unchanged.
    p.set_shares({"a": shares["a"] * 0.4, "b": shares["b"], "c": shares["c"]})
    after = p.assignment(ns)
    for name in ns:
        if before[name] != after[name]:
            # Legal moves: off the shrunk server, or capture by a region
            # that grew (b or c); never b <-> c swaps of settled sets...
            # b and c both grew (renormalization), so moves land anywhere,
            # but moves *from* b or c must go to a grown server, and 'a'
            # only shrank: nothing may move TO 'a'.
            assert after[name] != "a"


def test_remove_server_moves_only_its_filesets_mostly():
    p = ANUPlacement([f"s{i}" for i in range(5)])
    ns = names(2000)
    before = p.assignment(ns)
    p.remove_server("s2")
    after = p.assignment(ns)
    moved_not_from_s2 = [
        n for n in ns if before[n] != after[n] and before[n] != "s2"
    ]
    # Survivors' regions grow, so some earlier-probe captures occur, but the
    # overwhelming majority of moves are the failed server's file sets.
    assert len(moved_not_from_s2) < 0.15 * len(ns)
    # Every s2 file set found a new home.
    assert all(after[n] != "s2" for n in ns)


def test_add_server_takes_roughly_fair_share():
    p = ANUPlacement([f"s{i}" for i in range(4)])
    ns = names(4000)
    p.add_server("s4")
    counts = collections.Counter(p.assignment(ns).values())
    assert counts["s4"] == pytest.approx(4000 / 5, rel=0.25)


def test_minimal_movement_on_small_rescale():
    p = ANUPlacement([f"s{i}" for i in range(5)])
    ns = names(3000)
    before = p.assignment(ns)
    shares = {k: float(v) for k, v in p.shares().items()}
    shares["s0"] *= 0.9  # 10% trim of one server
    p.set_shares(shares)
    diff = diff_assignment(before, p.assignment(ns))
    # Far less than a full reshuffle: bounded by a small multiple of the
    # share change (2% of the interval) plus capture noise.
    assert diff.moved_fraction < 0.08


@given(
    n_servers=st.integers(min_value=1, max_value=8),
    n_files=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=30, deadline=None)
def test_assignment_total_and_liveness(n_servers, n_files):
    p = ANUPlacement([f"s{i}" for i in range(n_servers)])
    assignment = p.assignment(names(n_files))
    assert len(assignment) == n_files
    assert set(assignment.values()) <= set(p.servers)


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_locate_stable_between_reconfigurations(data):
    """Between reconfigurations, locate() is a pure function."""
    p = ANUPlacement([f"s{i}" for i in range(4)])
    ns = names(100)
    shares = {
        s: data.draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        for s in p.servers
    }
    p.set_shares(shares)
    first = p.assignment(ns)
    second = p.assignment(ns)
    assert first == second
