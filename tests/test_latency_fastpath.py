"""Equivalence tests for the bisect-based LatencyCollector fast paths.

The collector's windowed queries were rewritten from full-log scans to
time-sorted columns with ``searchsorted`` selection, and ``tail_summary``
from four independent re-pool/re-sort passes to one pooled quantile call.
These tests pin the rewrite to the original semantics:

- ``tail_summary`` must match the old four-call implementation
  **bit-for-bit** (pooled and per-server), under hypothesis-generated
  sample sets including out-of-order completion times;
- ``percentile`` windows must match the old filter-then-percentile
  implementation bit-for-bit;
- ``interval_report`` must match the old reverse-scan accumulator (up to
  float summation order, hence ``isclose`` rather than equality).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.latency import LatencyCollector

finite_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
latencies = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(st.tuples(finite_times, latencies), max_size=60)
server_samples = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), sample_lists, max_size=3
)


def build_collector(samples: dict[str, list[tuple[float, float]]]) -> LatencyCollector:
    collector = LatencyCollector()
    for server, pairs in samples.items():
        collector.ensure_server(server)
        for t, lat in pairs:
            collector.record(server, t, lat)
    return collector


def reference_percentile(
    samples: dict[str, list[tuple[float, float]]],
    q: float,
    server: str | None,
    start: float = 0.0,
    end: float = float("inf"),
) -> float:
    """The pre-rewrite implementation: re-pool, filter, np.percentile."""
    if server is not None:
        pools = [samples.get(server, [])]
    else:
        pools = list(samples.values())
    values = [lat for pool in pools for (t, lat) in pool if start <= t < end]
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values), q))


def reference_tail_summary(
    samples: dict[str, list[tuple[float, float]]], server: str | None
) -> dict[str, float]:
    """The pre-rewrite four-call tail summary."""
    return {
        "p50": reference_percentile(samples, 50.0, server),
        "p95": reference_percentile(samples, 95.0, server),
        "p99": reference_percentile(samples, 99.0, server),
        "max": reference_percentile(samples, 100.0, server),
    }


@settings(max_examples=200, deadline=None)
@given(samples=server_samples)
def test_tail_summary_matches_four_call_reference_bit_for_bit(samples):
    collector = build_collector(samples)
    for server in [None, "a", "b", "c"]:
        assert collector.tail_summary(server) == reference_tail_summary(
            samples, server
        )


@settings(max_examples=200, deadline=None)
@given(
    samples=server_samples,
    q=st.sampled_from([0.0, 25.0, 50.0, 95.0, 99.0, 100.0]),
    window=st.tuples(finite_times, finite_times),
)
def test_windowed_percentile_matches_reference_bit_for_bit(samples, q, window):
    start, end = sorted(window)
    collector = build_collector(samples)
    for server in [None, "a"]:
        got = collector.percentile(q, server, start=start, end=end)
        want = reference_percentile(samples, q, server, start, end)
        assert got == want


@settings(max_examples=200, deadline=None)
@given(samples=server_samples, window=st.tuples(finite_times, finite_times))
def test_interval_report_matches_reference(samples, window):
    start, end = sorted(window)
    collector = build_collector(samples)
    for server in ["a", "b", "c"]:
        in_window = [
            lat for (t, lat) in samples.get(server, []) if start <= t < end
        ]
        report = collector.interval_report(server, start, end)
        assert report.request_count == len(in_window)
        want_mean = sum(in_window) / len(in_window) if in_window else 0.0
        assert math.isclose(
            report.mean_latency, want_mean, rel_tol=1e-9, abs_tol=1e-12
        )


def test_out_of_order_appends_are_resorted():
    collector = LatencyCollector()
    for t, lat in [(30.0, 0.3), (10.0, 0.1), (20.0, 0.2), (5.0, 0.5)]:
        collector.record("s", t, lat)
    report = collector.interval_report("s", 10.0, 25.0)
    assert report.request_count == 2
    assert math.isclose(report.mean_latency, 0.15)
    assert collector.percentile(100.0, "s", start=0.0, end=10.0) == 0.5


def test_sorted_columns_cache_invalidates_on_append():
    collector = LatencyCollector()
    collector.record("s", 1.0, 0.1)
    assert collector.percentile(100.0, "s") == 0.1
    collector.record("s", 2.0, 0.9)  # append after a cached read
    assert collector.percentile(100.0, "s") == 0.9
    assert collector.sample_count("s") == 2


def test_tie_times_keep_insertion_order_in_windows():
    collector = LatencyCollector()
    collector.record("s", 1.0, 0.1)
    collector.record("s", 1.0, 0.2)
    collector.record("s", 0.5, 0.4)  # forces the argsort path
    report = collector.interval_report("s", 1.0, 1.5)
    assert report.request_count == 2
    assert math.isclose(report.mean_latency, 0.15)


def test_percentile_returns_zero_seconds_on_empty_pools():
    collector = LatencyCollector()
    assert collector.percentile(95.0) == 0.0
    assert collector.percentile(95.0, "ghost") == 0.0
    assert collector.tail_summary() == {
        "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
    }
