"""Unit tests for FIFO facilities and their monitors."""

import pytest

from repro.sim import Engine, Facility, SimulationError


def make() -> tuple[Engine, Facility]:
    engine = Engine()
    return engine, Facility(engine, "f")


def test_single_job_completes_after_service_time():
    engine, fac = make()
    done = []
    fac.request(2.5, lambda: done.append(engine.now))
    engine.run()
    assert done == [2.5]


def test_fifo_order_and_queueing_delay():
    engine, fac = make()
    done = []
    fac.request(2.0, lambda: done.append(("a", engine.now)))
    fac.request(1.0, lambda: done.append(("b", engine.now)))
    engine.run()
    # b waits for a: completes at 2 + 1.
    assert done == [("a", 2.0), ("b", 3.0)]


def test_arrivals_while_busy_queue_up():
    engine, fac = make()
    done = []
    engine.schedule(0.0, fac.request, 3.0, lambda: done.append(engine.now))
    engine.schedule(1.0, fac.request, 3.0, lambda: done.append(engine.now))
    engine.run()
    assert done == [3.0, 6.0]


def test_monitor_wait_and_sojourn():
    engine, fac = make()
    fac.request(2.0)
    fac.request(2.0)
    engine.run()
    mon = fac.monitor
    assert mon.jobs_completed == 2
    assert mon.total_wait == pytest.approx(2.0)  # second job waited 2s
    assert mon.total_sojourn == pytest.approx(2.0 + 4.0)
    assert mon.mean_wait == pytest.approx(1.0)
    assert mon.mean_sojourn == pytest.approx(3.0)


def test_monitor_utilization():
    engine, fac = make()
    fac.request(4.0)
    engine.schedule(8.0, lambda: None)  # extend the run to t=8
    engine.run()
    assert fac.monitor.utilization(engine.now) == pytest.approx(0.5)


def test_negative_service_time_rejected():
    _, fac = make()
    with pytest.raises(SimulationError):
        fac.request(-1.0)


def test_zero_service_time_allowed():
    engine, fac = make()
    done = []
    fac.request(0.0, lambda: done.append(engine.now))
    engine.run()
    assert done == [0.0]


def test_pause_defers_new_jobs_until_resume():
    engine, fac = make()
    done = []
    fac.pause()
    fac.request(1.0, lambda: done.append(engine.now))
    engine.schedule(5.0, fac.resume_service)
    engine.run()
    assert done == [6.0]


def test_fail_evicts_in_service_and_queued():
    engine, fac = make()
    done = []
    fac.request(10.0, lambda: done.append("a"))
    fac.request(10.0, lambda: done.append("b"))
    engine.schedule(1.0, lambda: evicted.append(fac.fail()))
    evicted = []
    engine.run()
    assert done == []  # no completion callbacks for evicted jobs
    assert evicted == [2]
    assert fac.monitor.jobs_completed == 0


def test_fail_then_resume_serves_new_work():
    engine, fac = make()
    done = []
    fac.request(10.0, lambda: done.append("old"))
    engine.schedule(1.0, fac.fail)
    engine.schedule(2.0, fac.resume_service)
    engine.schedule(3.0, fac.request, 1.0, lambda: done.append(engine.now))
    engine.run()
    assert done == [4.0]


def test_little_law_on_md1_queue():
    """Time-average number in system ~ arrival rate x mean sojourn."""
    engine, fac = make()
    service = 0.5
    n = 200
    for i in range(n):
        engine.schedule_at(float(i), fac.request, service)
    engine.run()
    duration = engine.now
    mon = fac.monitor
    arrival_rate = n / duration
    lhs = mon.mean_queue_length(duration)
    rhs = arrival_rate * mon.mean_sojourn
    assert lhs == pytest.approx(rhs, rel=0.05)


def test_queue_length_property():
    engine, fac = make()
    fac.request(5.0)
    fac.request(5.0)
    fac.request(5.0)
    assert fac.queue_length == 3
    engine.run(until=6.0)
    assert fac.queue_length == 2
