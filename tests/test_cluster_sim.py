"""Integration tests for the full cluster simulation."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    MoveCostModel,
    ServerSpec,
    paper_servers,
)
from repro.placement import (
    ANUPolicy,
    PrescientPolicy,
    RoundRobinPolicy,
    SimpleRandomPolicy,
)
from repro.workloads import SyntheticConfig, Trace, generate_synthetic


def small_trace(seed: int = 3, n_requests: int = 6000) -> Trace:
    return generate_synthetic(
        SyntheticConfig(
            n_filesets=40, n_requests=n_requests, duration=1200.0,
            request_cost=0.35, seed=seed,
        )
    )


def small_cluster(**kw) -> ClusterConfig:
    defaults = dict(servers=paper_servers(), tuning_interval=120.0,
                    sample_window=60.0, seed=1)
    defaults.update(kw)
    return ClusterConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(servers=())
    with pytest.raises(ValueError):
        ClusterConfig(servers=(ServerSpec("a", 1.0), ServerSpec("a", 2.0)))
    with pytest.raises(ValueError):
        ClusterConfig(servers=paper_servers(), tuning_interval=0.0)
    with pytest.raises(ValueError):
        ClusterConfig(servers=paper_servers(), latency_metric="nonsense")


def test_all_requests_complete():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), RoundRobinPolicy(), trace).run()
    assert res.total_requests == len(trace)
    assert sum(res.completed.values()) == len(trace)


def test_static_policy_never_moves():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), SimpleRandomPolicy(), trace).run()
    assert res.moves_started == 0
    assert res.ledger.total_moves == 0


def test_anu_moves_and_completes_everything():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), ANUPolicy(), trace).run()
    assert res.total_requests == len(trace)
    assert res.moves_started > 0
    assert res.moves_completed == res.moves_started


def test_deterministic_replay():
    trace = small_trace()
    r1 = ClusterSimulation(small_cluster(), ANUPolicy(), trace).run()
    r2 = ClusterSimulation(small_cluster(), ANUPolicy(), trace).run()
    assert r1.mean_latency == r2.mean_latency
    assert r1.moves_started == r2.moves_started
    assert r1.completed == r2.completed
    for s in r1.series.servers:
        assert np.array_equal(r1.series.mean_latency[s], r2.series.mean_latency[s])


def test_seed_changes_mover_draws_but_not_totals():
    trace = small_trace()
    r1 = ClusterSimulation(small_cluster(seed=1), ANUPolicy(), trace).run()
    r2 = ClusterSimulation(small_cluster(seed=2), ANUPolicy(), trace).run()
    assert r1.total_requests == r2.total_requests == len(trace)


def test_tuning_rounds_match_duration():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), RoundRobinPolicy(), trace).run()
    assert res.tuning_rounds == int(trace.duration // 120.0)


def test_anu_beats_static_on_heterogeneous_cluster():
    """The paper's core claim at small scale: ANU's worst server does far
    better than static placement's worst server."""
    trace = small_trace(n_requests=9000)
    static = ClusterSimulation(small_cluster(), SimpleRandomPolicy(), trace).run()
    anu = ClusterSimulation(small_cluster(), ANUPolicy(), trace).run()
    worst_static = max(static.series.tail_window_mean(s, 5) for s in static.series.servers)
    worst_anu = max(anu.series.tail_window_mean(s, 5) for s in anu.series.servers)
    assert worst_anu < worst_static


def test_prescient_starts_balanced():
    trace = small_trace()
    pol = PrescientPolicy()
    pol.grant_oracle(
        {s.name: s.speed for s in paper_servers()},
        trace.demand_by_fileset(0.0, 120.0),
    )
    res = ClusterSimulation(small_cluster(), pol, trace).run()
    # First window: no server should be catastrophically overloaded.
    first = {s: res.series.mean_latency[s][0] for s in res.series.servers}
    assert max(first.values()) < 1.0


def test_response_metric_includes_service_time():
    trace = small_trace()
    wait = ClusterSimulation(
        small_cluster(latency_metric="wait"), RoundRobinPolicy(), trace
    ).run()
    resp = ClusterSimulation(
        small_cluster(latency_metric="response"), RoundRobinPolicy(), trace
    ).run()
    assert resp.mean_latency > wait.mean_latency


def test_move_cost_zero_speeds_convergence():
    trace = small_trace()
    free = small_cluster(move_cost=MoveCostModel(0.0, 0.0, 0, 1.0))
    res = ClusterSimulation(free, ANUPolicy(), trace).run()
    assert res.total_requests == len(trace)


def test_utilization_reported_for_all_servers():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), RoundRobinPolicy(), trace).run()
    assert set(res.utilization) == {s.name for s in paper_servers()}
    assert all(0.0 <= u <= 1.0 + 1e-9 for u in res.utilization.values())


def test_final_assignment_covers_all_filesets():
    trace = small_trace()
    res = ClusterSimulation(small_cluster(), ANUPolicy(), trace).run()
    assert set(res.final_assignment) == set(trace.fileset_names)


def test_summary_keys():
    trace = small_trace(n_requests=500)
    res = ClusterSimulation(small_cluster(), RoundRobinPolicy(), trace).run()
    assert set(res.summary()) == {
        "mean_latency", "total_requests", "moves", "tuning_rounds", "retries",
    }


def test_single_server_cluster_works():
    trace = small_trace(n_requests=500)
    cfg = ClusterConfig(servers=(ServerSpec("only", 5.0),), seed=0)
    res = ClusterSimulation(cfg, RoundRobinPolicy(), trace).run()
    assert res.total_requests == len(trace)
    assert res.completed["only"] == len(trace)
