"""Replay-equivalence against pre-refactor golden summaries.

``tests/golden/harness_goldens.json`` was captured from the harnesses as
they existed BEFORE the ``repro.runtime`` extraction (commit 10d9516).
These tests demand that the adapter-based harnesses reproduce those runs
bit-for-bit — scalar metrics by float equality and the full windowed
latency series by SHA-256 — and that attaching a telemetry sink does not
perturb a single bit of any of it.

If one of these fails, the refactored stack changed simulation behaviour.
That is only acceptable for an *intentional* semantic change, in which
case regenerate the goldens (see ``tests/golden/capture_goldens.py``) and
say so in the commit message.
"""

import importlib.util
import json
from pathlib import Path

from repro.cluster.protocol_driver import ProtocolDrivenCluster
from repro.runtime import MemorySink

GOLDEN_DIR = Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "capture_goldens", GOLDEN_DIR / "capture_goldens.py"
)
cg = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cg)

GOLDEN = json.loads((GOLDEN_DIR / "harness_goldens.json").read_text())


def _assert_matches(got: dict, key: str) -> None:
    want = GOLDEN[key]
    # Compare field-by-field first so a mismatch names the culprit.
    for field in want:
        assert got[field] == want[field], f"{key}: {field} diverged"
    assert got == want


def test_cluster_matches_pre_refactor_golden():
    result = cg.run_cluster(7)
    _assert_matches(cg.cluster_golden(result), "cluster_anu_seed7")


def test_cluster_fault_path_matches_pre_refactor_golden():
    result = cg.run_cluster(5, cg.cluster_fault_schedule())
    _assert_matches(cg.cluster_golden(result), "cluster_anu_faults_seed5")


def test_full_system_matches_pre_refactor_golden():
    result = cg.run_full_system(11)
    _assert_matches(cg.full_system_golden(result), "full_system_seed11")


# ----------------------------------------------------------------------
# The routing plane at r=1 is invisible: SingleOwnerRouter + replication=1
# must replay the pre-refactor goldens bit-for-bit on every stack.
# ----------------------------------------------------------------------
def test_cluster_single_router_matches_golden():
    from repro.runtime.routing import SingleOwnerRouter

    result = cg.run_cluster(7, router=SingleOwnerRouter(), replication=1)
    _assert_matches(cg.cluster_golden(result), "cluster_anu_seed7")


def test_cluster_single_router_fault_path_matches_golden():
    from repro.runtime.routing import SingleOwnerRouter

    result = cg.run_cluster(
        5, cg.cluster_fault_schedule(),
        router=SingleOwnerRouter(), replication=1,
    )
    _assert_matches(cg.cluster_golden(result), "cluster_anu_faults_seed5")


def test_full_system_single_router_matches_golden():
    from repro.runtime.routing import SingleOwnerRouter

    result = cg.run_full_system(
        11, router=SingleOwnerRouter(), replication=1
    )
    _assert_matches(cg.full_system_golden(result), "full_system_seed11")


def test_protocol_single_router_replays_identically():
    from repro import ClusterConfig, paper_servers
    from repro.runtime.routing import SingleOwnerRouter
    from repro.workloads import SyntheticConfig, generate_synthetic

    def run(router, replication):
        trace = generate_synthetic(
            SyntheticConfig(n_filesets=20, n_requests=1500,
                            duration=400.0, seed=9)
        )
        config = ClusterConfig(
            servers=paper_servers(), tuning_interval=60.0,
            sample_window=30.0, seed=9,
        )
        return ProtocolDrivenCluster(
            config, trace, router=router, replication=replication
        ).run()

    default = run(None, 1)
    routed = run(SingleOwnerRouter(), 1)
    a, b = default.run, routed.run
    assert a.mean_latency == b.mean_latency
    assert a.completed == b.completed
    assert a.final_assignment == b.final_assignment
    assert a.moves_started == b.moves_started
    assert default.delegate_history == routed.delegate_history
    assert default.messages_sent == routed.messages_sent


# ----------------------------------------------------------------------
# Telemetry is observational: enabling a sink changes nothing.
# ----------------------------------------------------------------------
def test_cluster_telemetry_does_not_perturb_replay():
    from repro import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement.anu_policy import ANUPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    def run(sink):
        trace = generate_synthetic(
            SyntheticConfig(n_filesets=30, n_requests=4000,
                            duration=1000.0, seed=5)
        )
        config = ClusterConfig(
            servers=paper_servers(), tuning_interval=120.0,
            sample_window=60.0, seed=5,
        )
        return ClusterSimulation(
            config, ANUPolicy(), trace, cg.cluster_fault_schedule(),
            telemetry=sink,
        ).run()

    sink = MemorySink()
    observed = run(sink)
    _assert_matches(cg.cluster_golden(observed), "cluster_anu_faults_seed5")
    # The stream is complete and consistent with the result it observed.
    counts = sink.counts()
    assert counts["arrival"] == 4000
    assert counts["completion"] == observed.total_requests
    assert counts["tuning"] == observed.tuning_rounds
    assert counts["move-finish"] == observed.moves_completed
    assert counts["fault"] == 4
    # moves can start from the fault path's re-route as well as tuning;
    # every started move must be in the stream.
    assert counts["move-start"] >= observed.moves_started


def test_full_system_telemetry_does_not_perturb_replay():
    sink = MemorySink()
    result = cg.run_full_system(11, telemetry=sink)
    _assert_matches(cg.full_system_golden(result), "full_system_seed11")
    counts = sink.counts()
    # Every semantic op arrives and (the fleet is static) is served.
    assert counts["arrival"] == result.total_requests
    assert counts["completion"] == result.total_requests
    assert counts["tuning"] == result.tuning_rounds
    assert counts["move-finish"] == result.moves


def test_protocol_stack_replays_identically_with_telemetry():
    from repro import ClusterConfig, paper_servers
    from repro.workloads import SyntheticConfig, generate_synthetic

    def run(sink):
        trace = generate_synthetic(
            SyntheticConfig(n_filesets=20, n_requests=1500,
                            duration=400.0, seed=9)
        )
        config = ClusterConfig(
            servers=paper_servers(), tuning_interval=60.0,
            sample_window=30.0, seed=9,
        )
        return ProtocolDrivenCluster(config, trace, telemetry=sink).run()

    sink = MemorySink()
    with_telemetry = run(sink)
    silent = run(None)
    a, b = with_telemetry.run, silent.run
    assert a.mean_latency == b.mean_latency
    assert a.completed == b.completed
    assert a.final_assignment == b.final_assignment
    assert a.moves_started == b.moves_started
    assert with_telemetry.delegate_history == silent.delegate_history
    assert (
        with_telemetry.config_updates_applied == silent.config_updates_applied
    )
    assert with_telemetry.messages_sent == silent.messages_sent
    # Protocol-level records flow into the same stream as queueing ones.
    counts = sink.counts()
    assert counts.get("election", 0) >= 1
    assert counts.get("tuning", 0) >= 1
    assert counts["completion"] == a.total_requests


def test_jsonl_round_trip_preserves_stream():
    import io

    from repro.runtime import JsonlSink, TeeSink, read_jsonl

    memory = MemorySink()
    buffer = io.StringIO()
    with JsonlSink(buffer) as jsonl:
        cg.run_full_system(11, telemetry=TeeSink(memory, jsonl))
    parsed = read_jsonl(buffer.getvalue().splitlines())
    assert parsed == memory.records


def test_jsonl_file_path_round_trip(tmp_path):
    # read_jsonl(path) must round-trip what JsonlSink(path) wrote — the
    # same str | IO duality on both ends.
    from repro.runtime import JsonlSink, TeeSink, read_jsonl

    memory = MemorySink()
    path = str(tmp_path / "run.jsonl")
    with JsonlSink(path) as jsonl:
        cg.run_cluster(7, telemetry=TeeSink(memory, jsonl))
    assert read_jsonl(path) == memory.records
