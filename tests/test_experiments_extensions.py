"""Tests for replication, CSV export, the scale study, and new CLI paths."""

import csv

import pytest

from repro.experiments.cli import main
from repro.experiments.config import figure8
from repro.experiments.export import (
    export_experiment,
    write_series_csv,
    write_summary_csv,
)
from repro.experiments.replication import (
    MetricSummary,
    replicate,
    replication_table,
)
from repro.experiments.runner import generate_trace, run_policy
from repro.experiments.scale import measure_scale_point, scale_study, scale_table
from repro.workloads import SyntheticConfig


def tiny_config(seed: int):
    from dataclasses import replace

    cfg = figure8(quick=True, seed=seed)
    # Long enough that the steady-state metric (last 10 windows) is past
    # ANU's convergence transient.
    workload = replace(cfg.synthetic, n_filesets=40, n_requests=10_000,
                       duration=2_000.0)
    return replace(cfg, synthetic=workload,
                   policies=("round-robin", "anu"))


# ----------------------------------------------------------------------
# MetricSummary / replicate
# ----------------------------------------------------------------------
def test_metric_summary_statistics():
    s = MetricSummary.of([1.0, 2.0, 3.0])
    assert s.mean == pytest.approx(2.0)
    assert s.std == pytest.approx(1.0)
    assert s.ci95 > 0
    assert s.values == (1.0, 2.0, 3.0)
    with pytest.raises(ValueError):
        MetricSummary.of([])


def test_metric_summary_single_value():
    s = MetricSummary.of([5.0])
    assert s.mean == 5.0
    assert s.std == 0.0
    assert s.ci95 == float("inf")


def test_replicate_runs_all_seeds_and_policies():
    result = replicate(tiny_config, seeds=[0, 1])
    assert result.seeds == (0, 1)
    assert set(result.summaries) == {"round-robin", "anu"}
    for policy in result.summaries:
        for metric in ("mean_latency", "steady_worst", "moves", "preservation"):
            assert len(result.metric(policy, metric).values) == 2


def test_replicate_ordering_check():
    result = replicate(tiny_config, seeds=[0, 1])
    # ANU's steady state beats static round-robin in every replicate.
    assert result.ordering_holds("anu", "round-robin", "steady_worst")


def test_replicate_empty_seeds_rejected():
    with pytest.raises(ValueError):
        replicate(tiny_config, seeds=[])


def test_replication_table_renders():
    result = replicate(tiny_config, seeds=[0])
    table = replication_table(result)
    assert "anu" in table and "round-robin" in table


# ----------------------------------------------------------------------
# CSV export
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_result():
    trace = generate_trace(
        SyntheticConfig(n_filesets=20, n_requests=1500, duration=400.0)
    )
    cfg = figure8(quick=True).cluster
    return {"round-robin": run_policy("round-robin", trace, cfg)}


def test_write_series_csv(tmp_path, small_result):
    res = small_result["round-robin"]
    path = write_series_csv(res.series, tmp_path / "series.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0][0] == "time_s"
    assert len(rows) - 1 == len(res.series.times)
    # 1 time column + 2 per server.
    assert len(rows[0]) == 1 + 2 * len(res.series.servers)


def test_write_summary_csv(tmp_path, small_result):
    path = write_summary_csv(small_result, tmp_path / "summary.csv")
    with path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0][0] == "policy"
    assert rows[1][0] == "round-robin"
    assert float(rows[1][7]) == 1500  # total_requests


def test_export_experiment(tmp_path, small_result):
    written = export_experiment("figX", small_result, tmp_path / "out")
    names = {p.name for p in written}
    assert names == {"figX_round-robin.csv", "figX_summary.csv"}
    assert all(p.exists() for p in written)


# ----------------------------------------------------------------------
# Scale study
# ----------------------------------------------------------------------
def test_measure_scale_point_metrics():
    pt = measure_scale_point(8, filesets_per_server=30, seed=1)
    assert pt.n_servers == 8
    assert pt.n_filesets == 240
    assert pt.partitions >= 2 * (8 + 1)
    assert 1.5 < pt.mean_probes < 2.5
    assert 0 <= pt.add_moved_fraction < 0.5
    assert pt.balance_cov < 0.6


def test_scale_study_movement_shrinks_with_n():
    pts = scale_study(sizes=(5, 20), filesets_per_server=40, seed=2)
    by_n = {pt.n_servers: pt for pt in pts}
    assert by_n[20].add_moved_fraction < by_n[5].add_moved_fraction


def test_scale_table_renders():
    pts = scale_study(sizes=(5,), filesets_per_server=20)
    table = scale_table(pts)
    assert "CoV" in table and "probes" in table


# ----------------------------------------------------------------------
# CLI additions
# ----------------------------------------------------------------------
def test_cli_scale_quick(capsys):
    assert main(["scale", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Scale study" in out and "probes" in out


def test_cli_csv_export(tmp_path, capsys):
    assert main(["fig9", "--quick", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "CSV" in out
    assert (tmp_path / "fig9_summary.csv").exists()
    assert (tmp_path / "fig9_anu.csv").exists()


def test_cli_list_mentions_scale(capsys):
    assert main(["list"]) == 0
    assert "scale" in capsys.readouterr().out
