"""Gray failures end to end: limplock discovery, adapters, telemetry.

The headline acceptance test for the degraded-mode routing work: under a
seeded limplock schedule, ANU's delegate tuning sheds mapped share from
the limping server within a handful of tuning rounds — with no
membership event, no rebalance, and no hint from the placement layer —
while simple randomization (static hashing) never moves anything.  The
limp is discovered purely through the latency reports the paper's
tuning loop already collects.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
from repro.fs import FSError, MetadataCluster
from repro.membership import FaultSchedule
from repro.placement import ANUPolicy, SimpleRandomPolicy
from repro.proto import ControlPlane
from repro.runtime import MemorySink
from repro.runtime.telemetry import SpeedChanged, record_from_dict
from repro.units import Seconds
from repro.workloads import SyntheticConfig, generate_synthetic

LIMP_AT = 400.0
LIMP_FACTOR = 0.15
LIMPER = "server4"  # the fastest paper server: the worst-case straggler
TUNING = 60.0


def _limp_schedule() -> FaultSchedule:
    return FaultSchedule().degrade(Seconds(LIMP_AT), LIMPER, LIMP_FACTOR)


def _run(policy):
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=3000, duration=1200.0,
                        request_cost=0.3, seed=7)
    )
    config = ClusterConfig(servers=paper_servers(), tuning_interval=TUNING,
                           sample_window=TUNING / 2, seed=1)
    sim = ClusterSimulation(config, policy, trace, _limp_schedule())
    before = dict(sim.planned_assignment())
    result = sim.run()
    return sim, before, result


def test_anu_sheds_share_from_limping_server_within_five_rounds():
    """The acceptance bar from the issue: ANU's mapped share for the
    degraded server drops below its pre-limp share within 5 tuning
    rounds of the onset — limplock is *discovered*, not announced."""
    policy = ANUPolicy()
    _run(policy)
    history = policy.share_history
    pre = [shares for t, shares in history if t <= LIMP_AT]
    assert pre, "no tuning rounds completed before the limp onset"
    pre_share = pre[-1][LIMPER]
    window = [
        shares[LIMPER]
        for t, shares in history
        if LIMP_AT < t <= LIMP_AT + 5 * TUNING
    ]
    assert window, "no tuning rounds inside the 5-round window"
    assert min(window) < pre_share, (
        f"ANU failed to shed share from {LIMPER}: pre-limp {pre_share:.4f}, "
        f"window min {min(window):.4f}"
    )
    # And the shed persists: the final share stays below the pre-limp one.
    assert history[-1][1][LIMPER] < pre_share


def test_simple_randomization_never_reacts_to_the_limp():
    """Static hashing has no feedback loop: the limping server keeps its
    full mapped share for the whole run (the paper's motivating flaw)."""
    sim, before, result = _run(SimpleRandomPolicy())
    assert sim.planned_assignment() == before
    assert sum(result.completed.values()) == 3000


# ----------------------------------------------------------------------
# Stack adapters: the `set_speed` host primitive in each harness
# ----------------------------------------------------------------------
def test_cluster_server_effective_speed_and_recover_reset():
    from repro.cluster.server import MetadataServer, ServerSpec
    from repro.sim.engine import Engine

    server = MetadataServer(Engine(), ServerSpec("s0", speed=4.0))
    assert server.speed == 4.0 and server.base_speed == 4.0
    server.set_degradation(0.25)
    assert server.speed == pytest.approx(1.0)
    assert server.base_speed == 4.0  # the frozen spec never changes
    for bad in (0.0, -1.0, 1.5):
        with pytest.raises(ValueError):
            server.set_degradation(bad)
    server.fail()
    server.recover()
    assert server.degradation == 1.0  # a reboot cures the limp
    assert server.speed == 4.0


def test_fs_set_speed_is_bookkeeping_only_and_checks_names():
    cluster = MetadataCluster(["a", "b"], {"fs0": "/p0"})
    cluster.set_speed("a", 0.5, Seconds(1.0))  # no timing model: a no-op
    with pytest.raises(FSError):
        cluster.set_speed("ghost", 0.5, Seconds(1.0))


def test_proto_degrade_sets_node_speed_and_recover_resets():
    cp = ControlPlane(3, seed=1)
    cp.start()
    cp.run_until(5.0)
    name = sorted(cp.nodes)[0]
    cp.degrade(name, 0.3)
    assert cp.nodes[name].speed == 0.3
    assert cp.roster.degradation_of(name) == 0.3
    assert name in cp.live_nodes  # degraded is still live
    cp.restore(name)
    assert cp.nodes[name].speed == 1.0
    assert cp.roster.degradation_of(name) == 1.0


# ----------------------------------------------------------------------
# Telemetry: the SpeedChanged record
# ----------------------------------------------------------------------
def test_speed_changed_roundtrips_through_jsonl_payload():
    record = SpeedChanged(
        time=Seconds(12.5), server="server4", factor=0.15,
        effective_speed=1.35,
    )
    payload = record.to_dict()
    assert payload["kind"] == "speed"
    back = record_from_dict(payload)
    assert back == record


def test_degradation_free_run_is_byte_identical():
    """An empty degradation schedule must not perturb the digest chain:
    the PR-4/PR-5 golden replays stay valid."""
    from repro.runtime import DigestSink

    def run(faults):
        trace = generate_synthetic(
            SyntheticConfig(n_filesets=12, n_requests=300, duration=300.0,
                            request_cost=0.3, seed=5)
        )
        config = ClusterConfig(servers=paper_servers(), tuning_interval=60.0,
                               sample_window=30.0, seed=1)
        sink = DigestSink()
        ClusterSimulation(config, ANUPolicy(), trace, faults,
                          telemetry=sink).run()
        return sink.chain[-1]

    assert run(None) == run(FaultSchedule())
