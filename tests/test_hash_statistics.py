"""Statistical-quality tests for the placement hash family.

ANU's balance bound rests on the hash rounds behaving like independent
uniform draws.  These tests quantify that: avalanche behaviour (one-bit
input changes flip ~half the output bits), per-round independence, and
uniformity of the induced file-set-to-server distribution under realistic
name families (paths with shared prefixes, numeric suffixes).
"""

import collections

import numpy as np

from repro.core.hashing import HashFamily, hash64, hash_to_unit


def popcount64(x: int) -> int:
    return bin(x & 0xFFFFFFFFFFFFFFFF).count("1")


def test_avalanche_on_single_character_changes():
    """Changing one character flips ~32 of 64 output bits on average."""
    flips = []
    for i in range(500):
        a = f"/projects/team{i:04d}/alpha"
        b = f"/projects/team{i:04d}/alphb"  # last char +1
        flips.append(popcount64(hash64(a, 0) ^ hash64(b, 0)))
    mean = float(np.mean(flips))
    assert 28 < mean < 36  # binomial(64, 1/2) mean 32, sd ~4


def test_rounds_are_pairwise_uncorrelated():
    names = [f"fs{i:05d}" for i in range(3000)]
    cols = np.array([[hash_to_unit(n, r) for r in range(4)] for n in names])
    corr = np.corrcoef(cols.T)
    off_diag = corr[~np.eye(4, dtype=bool)]
    assert np.all(np.abs(off_diag) < 0.06)


def test_uniformity_under_shared_prefixes():
    """Realistic names share long prefixes; hashing must still spread."""
    names = [f"/home/users/department/engineering/project-{i}" for i in range(4000)]
    xs = np.array([hash_to_unit(n, 0) for n in names])
    counts, _ = np.histogram(xs, bins=16, range=(0, 1))
    expected = len(names) / 16
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    assert chi2 < 45  # df=15; very loose cut against structure artifacts


def test_uniformity_of_numeric_suffix_families():
    names = [f"ws{i:02d}" for i in range(100)] + [f"fs{i:04d}" for i in range(900)]
    xs = np.array([hash_to_unit(n, 0) for n in names])
    counts, _ = np.histogram(xs, bins=10, range=(0, 1))
    assert counts.min() > 50  # no empty-ish bucket for 1000 names


def test_fallback_choice_balanced_across_servers():
    family = HashFamily()
    servers = [f"s{i}" for i in range(7)]
    picks = collections.Counter(
        family.fallback_choice(f"name{i}", servers) for i in range(7000)
    )
    for server in servers:
        assert 800 < picks[server] < 1200  # ~1000 each


def test_probe_sequence_covers_interval_jointly():
    """Across 8 rounds, nearly every name hits every quarter of the
    interval at least once — no systematic dead zones per round."""
    family = HashFamily(max_rounds=8)
    missing = 0
    for i in range(500):
        quarters = {int(p * 4) for p in family.probes(f"n{i}")}
        if quarters != {0, 1, 2, 3}:
            missing += 1
    # P(miss a fixed quarter in 8 rounds) = (3/4)^8 ~ 0.1; 4 quarters ~ 0.33.
    assert missing / 500 < 0.45
