"""Unit tests for the lock manager."""

import pytest

from repro.fs.locks import LockError, LockManager, LockMode

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def test_shared_locks_coexist():
    lm = LockManager()
    assert lm.acquire("c1", "/f", S)
    assert lm.acquire("c2", "/f", S)
    assert lm.holders("/f") == {"c1": S, "c2": S}


def test_exclusive_excludes():
    lm = LockManager()
    assert lm.acquire("c1", "/f", X)
    assert not lm.acquire("c2", "/f", X)
    assert not lm.acquire("c3", "/f", S)
    assert lm.waiting("/f") == [("c2", X), ("c3", S)]


def test_release_promotes_fifo():
    lm = LockManager()
    lm.acquire("c1", "/f", X)
    lm.acquire("c2", "/f", X)
    lm.acquire("c3", "/f", S)
    promoted = lm.release("c1", "/f")
    assert promoted == [("c2", X)]  # FIFO: c2 before c3, and X blocks c3
    promoted = lm.release("c2", "/f")
    assert promoted == [("c3", S)]


def test_shared_release_promotes_multiple_shared():
    lm = LockManager()
    lm.acquire("w", "/f", X)
    lm.acquire("r1", "/f", S)
    lm.acquire("r2", "/f", S)
    promoted = lm.release("w", "/f")
    assert promoted == [("r1", S), ("r2", S)]


def test_writer_not_starved_by_late_readers():
    lm = LockManager()
    lm.acquire("r1", "/f", S)
    assert not lm.acquire("w", "/f", X)      # queued behind r1
    assert not lm.acquire("r2", "/f", S)     # FIFO: may not jump the writer
    lm.release("r1", "/f")
    assert lm.holders("/f") == {"w": X}


def test_reacquire_idempotent_and_subsumption():
    lm = LockManager()
    assert lm.acquire("c1", "/f", X)
    assert lm.acquire("c1", "/f", X)   # idempotent
    assert lm.acquire("c1", "/f", S)   # exclusive subsumes shared
    assert lm.holders("/f") == {"c1": X}


def test_upgrade_by_sole_holder():
    lm = LockManager()
    lm.acquire("c1", "/f", S)
    assert lm.acquire("c1", "/f", X)
    assert lm.holders("/f") == {"c1": X}


def test_release_without_hold_rejected():
    lm = LockManager()
    with pytest.raises(LockError):
        lm.release("c1", "/f")


def test_release_client_drops_everything_and_promotes():
    lm = LockManager()
    lm.acquire("dead", "/a", X)
    lm.acquire("dead", "/b", S)
    lm.acquire("live", "/a", S)       # queued behind dead's X
    lm.acquire("dead", "/c", X)       # a queued request too
    promoted = lm.release_client("dead")
    assert ("/a", "live", S) in promoted
    assert lm.holders("/a") == {"live": S}
    assert lm.holders("/b") == {}
    assert lm.waiting("/c") == []


def test_table_cleanup():
    lm = LockManager()
    lm.acquire("c1", "/f", S)
    lm.release("c1", "/f")
    assert len(lm) == 0
    assert lm.locked_paths() == []


def test_grant_and_wait_counters():
    lm = LockManager()
    lm.acquire("c1", "/f", X)
    lm.acquire("c2", "/f", X)
    assert lm.grants == 1
    assert lm.waits == 1
    lm.release("c1", "/f")
    assert lm.grants == 2
