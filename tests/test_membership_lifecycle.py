"""Unit tests for the membership subsystem: roster, schedule, director."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    LifecycleError,
    MembershipDirector,
    MembershipRoster,
    ServerState,
)
from repro.units import Seconds


# ----------------------------------------------------------------------
# MembershipRoster: the state machine itself
# ----------------------------------------------------------------------
def test_roster_initial_states_and_views():
    roster = MembershipRoster({"a": 1.0, "b": 3.0})
    assert roster.live() == ["a", "b"]
    assert roster.live_count == 2
    assert roster.speeds() == {"a": 1.0, "b": 3.0}
    assert roster.state_of("b") is ServerState.UP
    assert "a" in roster and "ghost" not in roster
    assert list(roster) == ["a", "b"]


def test_roster_full_lifecycle_cycle():
    roster = MembershipRoster(["a", "b"])
    roster.fail("a")
    assert roster.state_of("a") is ServerState.DOWN
    assert roster.live() == ["b"]
    roster.recover("a")
    assert roster.state_of("a") is ServerState.UP
    roster.decommission("a")
    assert roster.state_of("a") is ServerState.DRAINING
    assert not roster.is_live("a")
    roster.drained("a")
    assert roster.state_of("a") is ServerState.DOWN
    # Recover after a completed decommission is legal (documented).
    roster.recover("a")
    assert roster.is_live("a")


def test_roster_recover_straight_from_draining():
    roster = MembershipRoster(["a", "b"])
    roster.decommission("a")
    roster.recover("a")
    assert roster.is_live("a")


@pytest.mark.parametrize(
    "setup, action",
    [
        (lambda r: None, lambda r: r.fail("ghost")),          # unknown
        (lambda r: r.fail("a"), lambda r: r.fail("a")),       # double fail
        (lambda r: None, lambda r: r.recover("a")),           # recover up
        (lambda r: None, lambda r: r.commission("a")),        # known name
        (lambda r: r.fail("a"), lambda r: r.decommission("a")),  # decom down
        (lambda r: r.fail("a"), lambda r: r.drained("a")),    # drain w/o decom
    ],
)
def test_roster_illegal_transitions_raise(setup, action):
    roster = MembershipRoster(["a", "b"])
    setup(roster)
    with pytest.raises(LifecycleError):
        action(roster)


def test_roster_never_forgets_members():
    roster = MembershipRoster(["a", "b"])
    roster.fail("a")
    assert "a" in roster
    assert roster.known() == ["a", "b"]
    with pytest.raises(LifecycleError):
        roster.commission("a")  # must use recover for a former member


# ----------------------------------------------------------------------
# MembershipRoster: the gray-failure (degradation) dimension
# ----------------------------------------------------------------------
def test_roster_degrade_and_restore_adjust_effective_speed():
    roster = MembershipRoster({"a": 4.0, "b": 2.0})
    assert roster.degradation_of("a") == 1.0
    assert not roster.is_degraded("a")
    roster.degrade("a", 0.25)
    assert roster.degradation_of("a") == 0.25
    assert roster.is_degraded("a")
    assert roster.effective_speed("a") == pytest.approx(1.0)  # 4.0 * 0.25
    assert roster.speed_of("a") == 4.0  # nominal speed untouched
    assert roster.effective_speeds() == {"a": 1.0, "b": 2.0}
    assert roster.degraded() == ["a"]
    # Degraded-but-UP is still live: gray failures never change liveness.
    assert roster.is_live("a") and roster.live() == ["a", "b"]
    roster.restore("a")
    assert roster.degradation_of("a") == 1.0
    assert roster.degraded() == []


def test_roster_redegrade_is_legal_for_ramps():
    roster = MembershipRoster(["a", "b"])
    roster.degrade("a", 0.5)
    roster.degrade("a", 0.25)  # slow-then-dead ramps re-degrade in place
    assert roster.degradation_of("a") == 0.25


@pytest.mark.parametrize(
    "setup, action",
    [
        (lambda r: r.fail("a"), lambda r: r.degrade("a", 0.5)),  # down
        (lambda r: r.decommission("a"), lambda r: r.degrade("a", 0.5)),
        (lambda r: None, lambda r: r.restore("a")),  # not degraded
        (lambda r: r.fail("a"), lambda r: r.restore("a")),
        (lambda r: None, lambda r: r.degrade("ghost", 0.5)),  # unknown
    ],
)
def test_roster_illegal_degradation_transitions_raise(setup, action):
    roster = MembershipRoster(["a", "b"])
    setup(roster)
    with pytest.raises(LifecycleError):
        action(roster)


@pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
def test_roster_degrade_rejects_bad_factor(factor):
    roster = MembershipRoster(["a", "b"])
    with pytest.raises(LifecycleError):
        roster.degrade("a", factor)


def test_roster_recover_cures_the_limp():
    """A reboot resets degradation: recover() implies full speed."""
    roster = MembershipRoster(["a", "b"])
    roster.degrade("a", 0.1)
    roster.fail("a")
    assert roster.degraded() == []  # down servers are not "degraded"
    roster.recover("a")
    assert roster.degradation_of("a") == 1.0
    assert roster.effective_speed("a") == roster.speed_of("a")


# ----------------------------------------------------------------------
# FaultEvent: gray-failure validation
# ----------------------------------------------------------------------
def test_degrade_event_validates_factor():
    FaultEvent(Seconds(1.0), FaultKind.DEGRADE, "a", factor=0.5)
    for bad in (0.0, -0.1, 1.0001):
        with pytest.raises(ValueError):
            FaultEvent(Seconds(1.0), FaultKind.DEGRADE, "a", factor=bad)
    # factor is ignored for non-DEGRADE kinds (stays at its default).
    FaultEvent(Seconds(1.0), FaultKind.RESTORE, "a")


def test_schedule_validates_gray_failure_lifecycle():
    sched = (
        FaultSchedule()
        .degrade(1.0, "a", 0.25)
        .restore(5.0, "a")
        .degrade(6.0, "a", 0.5)
        .fail(7.0, "a")       # death cuts the limp short
        .recover(8.0, "a")    # reboot cures it
        .degrade(9.0, "a", 0.4)
    )
    sched.validate({"a", "b"})
    with pytest.raises(ValueError):
        FaultSchedule().restore(1.0, "a").validate({"a", "b"})
    with pytest.raises(ValueError):
        # Degrading a down server is illegal.
        FaultSchedule().fail(1.0, "a").degrade(2.0, "a", 0.5).validate(
            {"a", "b", "c"}
        )


# ----------------------------------------------------------------------
# FaultSchedule: ordered insertion + lifecycle validation
# ----------------------------------------------------------------------
def _legal_event_sequence(draw):
    """Strategy: a list of events legal to replay from servers a/b/c."""
    roster = MembershipRoster(["a", "b", "c"])
    events = []
    time = 0.0
    n = draw(st.integers(min_value=0, max_value=30))
    fresh = 0
    for _ in range(n):
        # Strictly increasing times: the schedule sorts ties by (time,
        # server), which would permute same-time events out of the legal
        # order this generator constructed them in.
        time += draw(st.floats(min_value=0.001, max_value=10.0))
        choices = []
        live = roster.live()
        if roster.live_count > 1:
            choices.append("fail")
            choices.append("decommission")
        downed = [
            s for s in roster.known()
            if roster.state_of(s) is not ServerState.UP
        ]
        if downed:
            choices.append("recover")
        if fresh < 4:
            choices.append("commission")
        if roster.live_count >= 2:
            choices.append("delegate-crash")
        if not choices:
            break
        what = draw(st.sampled_from(sorted(choices)))
        if what == "fail":
            victim = draw(st.sampled_from(live))
            roster.fail(victim)
            events.append(FaultEvent(Seconds(time), FaultKind.FAIL, victim))
        elif what == "decommission":
            victim = draw(st.sampled_from(live))
            roster.decommission(victim)
            events.append(
                FaultEvent(Seconds(time), FaultKind.DECOMMISSION, victim)
            )
        elif what == "recover":
            victim = draw(st.sampled_from(downed))
            roster.recover(victim)
            events.append(FaultEvent(Seconds(time), FaultKind.RECOVER, victim))
        elif what == "commission":
            name = f"new{fresh}"
            fresh += 1
            roster.commission(name, 2.0)
            events.append(
                FaultEvent(Seconds(time), FaultKind.COMMISSION, name, 2.0)
            )
        else:
            events.append(
                FaultEvent(Seconds(time), FaultKind.DELEGATE_CRASH, "*")
            )
    return events


legal_events = st.composite(_legal_event_sequence)()


@settings(max_examples=60, deadline=None)
@given(events=legal_events, order=st.randoms(use_true_random=False))
def test_schedule_add_matches_append_then_sort(events, order):
    """bisect-insort insertion equals the old append+stable-sort, for any
    insertion order of the same event set."""
    shuffled = list(events)
    order.shuffle(shuffled)
    fast = FaultSchedule()
    for ev in shuffled:
        fast.add(ev)
    slow = list(shuffled)
    slow.sort(key=lambda e: (e.time, e.server))  # the old implementation
    assert fast.events == slow


@settings(max_examples=60, deadline=None)
@given(events=legal_events)
def test_legal_sequences_validate(events):
    schedule = FaultSchedule()
    for ev in events:
        schedule.add(ev)
    schedule.validate({"a", "b", "c"})


def test_validate_rejects_double_fail():
    sched = FaultSchedule().fail(1.0, "a").fail(2.0, "a")
    with pytest.raises(ValueError):
        sched.validate({"a", "b"})


def test_validate_rejects_losing_last_server():
    sched = FaultSchedule().fail(1.0, "a").fail(2.0, "b")
    with pytest.raises(ValueError):
        sched.validate({"a", "b"})


def test_validate_rejects_delegate_crash_without_successor():
    """A delegate crash needs >= 2 live servers to elect a successor;
    the old validator silently skipped DELEGATE_CRASH events."""
    sched = FaultSchedule().fail(1.0, "a").delegate_crash(2.0)
    with pytest.raises(ValueError):
        sched.validate({"a", "b"})
    # With a third server the same schedule is fine.
    sched.validate({"a", "b", "c"})


def test_validate_allows_recover_after_decommission():
    FaultSchedule().decommission(1.0, "a").recover(5.0, "a").validate(
        {"a", "b"}
    )


# ----------------------------------------------------------------------
# MembershipDirector against a recording host
# ----------------------------------------------------------------------
class RecordingHost:
    """Minimal host that logs primitive calls and manages a toy placement."""

    def __init__(self, roster: MembershipRoster, filesets: list[str]) -> None:
        self.roster = roster
        self.filesets = filesets
        self.calls: list[tuple] = []
        self.assignment = {
            fs: roster.live()[i % len(roster.live())]
            for i, fs in enumerate(filesets)
        }

    def crash_server(self, server, now):
        self.calls.append(("crash", server))
        return [f"orphan-from-{server}"]

    def drain_server(self, server, now):
        self.calls.append(("drain", server))

    def restart_server(self, server, now):
        self.calls.append(("restart", server))

    def install_server(self, server, speed, now):
        self.calls.append(("install", server, speed))

    def set_speed(self, server, factor, now):
        self.calls.append(("set_speed", server, factor))

    def delegate_failover(self, now):
        self.calls.append(("failover",))
        return None

    def membership_assignment(self):
        old = dict(self.assignment)
        live = self.roster.live()
        new = {fs: live[i % len(live)] for i, fs in enumerate(self.filesets)}
        return old, new

    def reset_round_history(self):
        self.calls.append(("reset",))

    def realize_membership(self, old, new, now):
        self.calls.append(("realize",))
        self.assignment = dict(new)

    def reinject(self, orphans, now):
        self.calls.append(("reinject", tuple(orphans)))


def _director():
    roster = MembershipRoster({"a": 1.0, "b": 2.0, "c": 3.0})
    host = RecordingHost(roster, ["f0", "f1", "f2", "f3"])
    return roster, host, MembershipDirector(roster, host)


def test_director_fail_orders_crash_rebalance_reinject():
    roster, host, director = _director()
    change = director.apply(FaultEvent(Seconds(1.0), FaultKind.FAIL, "a"))
    kinds = [c[0] for c in host.calls]
    assert kinds == ["crash", "reset", "realize", "reinject"]
    assert roster.state_of("a") is ServerState.DOWN
    assert change.live == ("b", "c")
    assert change.diff is not None and change.moved >= 1
    # Every move off the dead server is classified as an orphan re-home.
    assert change.orphaned >= 1 and change.rebalanced >= 0
    assert change.orphaned + change.rebalanced == change.moved
    assert director.applied == [FaultEvent(Seconds(1.0), FaultKind.FAIL, "a")]


def test_director_delegate_crash_needs_survivor():
    roster, host, director = _director()
    director.apply(FaultEvent(Seconds(1.0), FaultKind.FAIL, "a"))
    director.apply(FaultEvent(Seconds(2.0), FaultKind.FAIL, "b"))
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(3.0), FaultKind.DELEGATE_CRASH, "*"))


def test_director_delegate_crash_is_logical_only():
    roster, host, director = _director()
    change = director.apply(
        FaultEvent(Seconds(1.0), FaultKind.DELEGATE_CRASH, "*")
    )
    assert [c[0] for c in host.calls] == ["failover"]
    assert change.diff is None and change.moved == 0


def test_director_commission_and_decommission_rebalance():
    roster, host, director = _director()
    change = director.apply(
        FaultEvent(Seconds(1.0), FaultKind.COMMISSION, "d", speed=4.0)
    )
    assert ("install", "d", 4.0) in host.calls
    assert roster.speed_of("d") == 4.0
    assert change.live == ("a", "b", "c", "d")
    host.calls.clear()
    director.apply(FaultEvent(Seconds(2.0), FaultKind.DECOMMISSION, "d"))
    assert [c[0] for c in host.calls] == ["drain", "reset", "realize"]
    assert roster.state_of("d") is ServerState.DRAINING


def test_director_illegal_event_mutates_nothing():
    roster, host, director = _director()
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(1.0), FaultKind.RECOVER, "a"))
    assert host.calls == []
    assert director.applied == []


def test_director_emits_telemetry_records():
    from repro.runtime import MemorySink

    roster = MembershipRoster({"a": 1.0, "b": 2.0})
    host = RecordingHost(roster, ["f0", "f1"])
    sink = MemorySink()
    director = MembershipDirector(roster, host, telemetry=sink)
    director.apply(FaultEvent(Seconds(5.0), FaultKind.FAIL, "a"))
    counts = sink.counts()
    assert counts["fault"] == 1
    assert counts["membership"] == 1
    (record,) = sink.of_kind("membership")
    assert record.fault == "fail"
    assert record.live == 1
    assert record.orphaned + record.rebalanced >= 1


def test_director_degrade_is_set_speed_only():
    """Gray failures must not rebalance, reset history, or re-place.

    The whole point of the limplock model: the placement layer is not
    told — ANU must *discover* the slow server through latency.  The
    director realizes a DEGRADE purely as a host ``set_speed`` call.
    """
    roster, host, director = _director()
    change = director.apply(
        FaultEvent(Seconds(1.0), FaultKind.DEGRADE, "a", factor=0.25)
    )
    assert host.calls == [("set_speed", "a", 0.25)]
    assert change.diff is None and change.moved == 0
    assert change.live == ("a", "b", "c")  # degraded is still live
    assert roster.effective_speed("a") == pytest.approx(0.25)
    host.calls.clear()
    change = director.apply(FaultEvent(Seconds(2.0), FaultKind.RESTORE, "a"))
    assert host.calls == [("set_speed", "a", 1.0)]
    assert change.diff is None
    assert roster.degradation_of("a") == 1.0


def test_director_gray_failure_telemetry_has_no_membership_record():
    from repro.runtime import MemorySink

    roster = MembershipRoster({"a": 1.0, "b": 2.0})
    host = RecordingHost(roster, ["f0", "f1"])
    sink = MemorySink()
    director = MembershipDirector(roster, host, telemetry=sink)
    director.apply(FaultEvent(Seconds(5.0), FaultKind.DEGRADE, "a", factor=0.5))
    director.apply(FaultEvent(Seconds(9.0), FaultKind.RESTORE, "a"))
    assert [r.kind for r in sink.records] == ["fault", "speed", "fault", "speed"]
    degrade_rec, restore_rec = sink.of_kind("speed")
    assert degrade_rec.server == "a" and degrade_rec.factor == 0.5
    assert degrade_rec.effective_speed == pytest.approx(0.5)
    assert restore_rec.factor == 1.0
    assert restore_rec.effective_speed == pytest.approx(1.0)
    assert sink.counts().get("membership", 0) == 0


def test_director_illegal_degrade_mutates_nothing():
    roster, host, director = _director()
    director.apply(FaultEvent(Seconds(1.0), FaultKind.FAIL, "a"))
    host.calls.clear()
    applied = list(director.applied)
    with pytest.raises(LifecycleError):
        director.apply(
            FaultEvent(Seconds(2.0), FaultKind.DEGRADE, "a", factor=0.5)
        )
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(3.0), FaultKind.RESTORE, "b"))
    assert host.calls == []
    assert director.applied == applied


def test_director_rejected_event_emits_no_telemetry():
    """Regression (RPL105): an illegal event leaves no dangling record.

    Before the validate-then-emit fix the director published
    ``FaultInjected`` *before* asking the roster whether the transition
    was legal, so a rejected event left a fault record with no matching
    ``membership`` record — and any digest-chain comparison against the
    true harness state diverged from that point on.
    """
    from repro.runtime import MemorySink

    roster = MembershipRoster({"a": 1.0, "b": 2.0})
    host = RecordingHost(roster, ["f0", "f1"])
    sink = MemorySink()
    director = MembershipDirector(roster, host, telemetry=sink)
    # Illegal transition (recover a live server): rejected silently.
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(1.0), FaultKind.RECOVER, "a"))
    assert sink.records == []
    # Duplicate commission: also rejected before any emission.
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(2.0), FaultKind.COMMISSION, "a"))
    assert sink.records == []
    # Delegate crash without a survivor: same guarantee.
    director.apply(FaultEvent(Seconds(3.0), FaultKind.FAIL, "a"))
    sink.records.clear()
    with pytest.raises(LifecycleError):
        director.apply(FaultEvent(Seconds(4.0), FaultKind.DELEGATE_CRASH, "*"))
    assert sink.records == []
    assert host.calls[-1][0] != "failover"
    # A legal event still emits the full fault/membership pair.
    director.apply(FaultEvent(Seconds(5.0), FaultKind.RECOVER, "a"))
    assert [r.kind for r in sink.records] == ["fault", "membership"]
