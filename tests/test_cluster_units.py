"""Unit tests for cluster building blocks: requests, file sets, servers,
mover, fault schedules."""

import numpy as np
import pytest

from repro.membership.faults import FaultEvent, FaultKind, FaultSchedule
from repro.cluster.fileset import FileSetState
from repro.cluster.mover import FREE_MOVES, FileSetMover, MoveCostModel
from repro.cluster.request import MetadataRequest
from repro.cluster.server import MetadataServer, ServerSpec
from repro.sim import Engine


# ----------------------------------------------------------------------
# MetadataRequest
# ----------------------------------------------------------------------
def test_request_latency_lifecycle():
    r = MetadataRequest(arrival=1.0, fileset="fs", cost=0.5)
    with pytest.raises(ValueError):
        _ = r.latency
    lat = r.complete("s1", 3.0)
    assert lat == pytest.approx(2.0)
    assert r.served_by == "s1"
    with pytest.raises(ValueError):
        r.complete("s1", 4.0)


def test_request_completion_before_arrival_rejected():
    r = MetadataRequest(arrival=5.0, fileset="fs", cost=0.5)
    with pytest.raises(ValueError):
        r.complete("s1", 4.0)


def test_request_ids_unique():
    a = MetadataRequest(0.0, "f", 0.1)
    b = MetadataRequest(0.0, "f", 0.1)
    assert a.rid != b.rid


# ----------------------------------------------------------------------
# FileSetState
# ----------------------------------------------------------------------
def test_fileset_move_lifecycle():
    st = FileSetState(name="fs", owner="a")
    st.begin_move("b")
    assert st.moving and st.move_target == "b"
    st.buffer.append(MetadataRequest(0.0, "fs", 0.1))
    drained = st.finish_move(cold_requests=2)
    assert st.owner == "b" and not st.moving
    assert len(drained) == 1
    assert st.buffer == []
    assert st.moves == 1
    assert st.cold_remaining == 2


def test_fileset_move_validation():
    st = FileSetState(name="fs", owner="a")
    with pytest.raises(ValueError):
        st.begin_move("a")  # move to self
    with pytest.raises(ValueError):
        st.finish_move(0)  # not moving
    st.begin_move("b")
    with pytest.raises(ValueError):
        st.begin_move("c")  # already moving
    st.redirect_move("c")
    assert st.move_target == "c"
    st.finish_move(0)
    with pytest.raises(ValueError):
        st.redirect_move("d")  # settled


def test_cold_cache_multiplier_decays():
    st = FileSetState(name="fs", owner="a", cold_remaining=2)
    assert st.next_cost_multiplier(3.0) == 3.0
    assert st.next_cost_multiplier(3.0) == 3.0
    assert st.next_cost_multiplier(3.0) == 1.0


# ----------------------------------------------------------------------
# MetadataServer
# ----------------------------------------------------------------------
def test_server_spec_validation():
    with pytest.raises(ValueError):
        ServerSpec("s", 0.0)


def test_server_speed_scales_service_time():
    engine = Engine()
    fast = MetadataServer(engine, ServerSpec("fast", 9.0))
    req = MetadataRequest(0.0, "fs", 0.9)
    assert fast.service_time(req) == pytest.approx(0.1)
    assert fast.service_time(req, multiplier=2.0) == pytest.approx(0.2)


def test_server_submit_and_complete():
    engine = Engine()
    server = MetadataServer(engine, ServerSpec("s", 2.0))
    done = []
    req = MetadataRequest(0.0, "fs", 1.0)
    server.submit(req, 1.0, lambda r: done.append((r.rid, engine.now)))
    engine.run()
    assert done == [(req.rid, 0.5)]
    assert server.outstanding == {}


def test_server_fail_orphans_outstanding():
    engine = Engine()
    server = MetadataServer(engine, ServerSpec("s", 1.0))
    reqs = [MetadataRequest(0.0, "fs", 10.0) for _ in range(3)]
    for r in reqs:
        server.submit(r, 1.0, lambda r: None)
    orphans = server.fail()
    assert len(orphans) == 3
    assert all(r.retries == 1 for r in orphans)
    assert not server.alive
    with pytest.raises(RuntimeError):
        server.fail()
    with pytest.raises(RuntimeError):
        server.submit(reqs[0], 1.0, lambda r: None)
    engine.run()  # nothing completes


def test_server_recover():
    engine = Engine()
    server = MetadataServer(engine, ServerSpec("s", 1.0))
    server.fail()
    server.recover()
    assert server.alive
    with pytest.raises(RuntimeError):
        server.recover()
    done = []
    server.submit(MetadataRequest(0.0, "fs", 1.0), 1.0, lambda r: done.append(1))
    engine.run()
    assert done == [1]


# ----------------------------------------------------------------------
# FileSetMover
# ----------------------------------------------------------------------
def test_move_cost_model_validation():
    with pytest.raises(ValueError):
        MoveCostModel(min_delay=5.0, max_delay=4.0)
    with pytest.raises(ValueError):
        MoveCostModel(cold_multiplier=0.5)


def test_mover_delay_in_bounds():
    engine = Engine()
    mover = FileSetMover(engine, MoveCostModel(), np.random.default_rng(0))
    for _ in range(100):
        d = mover.sample_delay()
        assert 5.0 <= d <= 10.0


def test_free_moves_zero_delay():
    engine = Engine()
    mover = FileSetMover(engine, FREE_MOVES, np.random.default_rng(0))
    assert mover.sample_delay() == 0.0


def test_mover_completes_and_drains_buffer():
    engine = Engine()
    mover = FileSetMover(
        engine, MoveCostModel(min_delay=5.0, max_delay=5.0, cold_requests=4),
        np.random.default_rng(0),
    )
    st = FileSetState(name="fs", owner="a")
    done = []
    mover.start_move(st, "b", lambda s, drained: done.append((engine.now, s.owner, len(drained))))
    st.buffer.append(MetadataRequest(1.0, "fs", 0.1))
    engine.run()
    assert done == [(5.0, "b", 1)]
    assert mover.moves_started == 1
    assert mover.moves_completed == 1
    assert st.cold_remaining == 4


# ----------------------------------------------------------------------
# FaultSchedule
# ----------------------------------------------------------------------
def test_fault_schedule_builders_and_ordering():
    sched = (
        FaultSchedule()
        .recover(200.0, "a")
        .fail(100.0, "a")
        .commission(300.0, "x", speed=2.0)
        .decommission(400.0, "x")
        .delegate_crash(50.0)
    )
    times = [e.time for e in sched]
    assert times == sorted(times)
    assert len(sched) == 5


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, FaultKind.FAIL, "a")
    with pytest.raises(ValueError):
        FaultEvent(1.0, FaultKind.COMMISSION, "a", speed=0.0)


def test_schedule_validate_catches_inconsistencies():
    FaultSchedule().fail(1.0, "a").recover(2.0, "a").validate({"a", "b"})
    with pytest.raises(ValueError):
        FaultSchedule().fail(1.0, "ghost").validate({"a"})
    with pytest.raises(ValueError):
        FaultSchedule().recover(1.0, "a").validate({"a"})  # a is already up
    with pytest.raises(ValueError):
        FaultSchedule().commission(1.0, "a", 1.0).validate({"a"})
    with pytest.raises(ValueError):
        FaultSchedule().fail(1.0, "a").validate({"a"})  # empties the cluster
    with pytest.raises(ValueError):
        s = FaultSchedule().fail(1.0, "a").fail(2.0, "a")
        s.validate({"a", "b"})
