"""Tests for the timed full-system simulation.

The headline property: a timed, tuned, reconfiguring run executes every
operation exactly once on its file set's owner, and the resulting
namespace state equals an untimed replay of the same stream.
"""

import pytest

from repro.fs import (
    FsWorkloadConfig,
    MetadataCluster,
    generate_operations,
    populate,
)
from repro.fs.simulation import (
    FullSystemConfig,
    FullSystemSimulation,
)

ROOTS = {f"fs{i}": f"/p{i}" for i in range(8)}
SPEEDS = {f"server{i}": float(2 * i + 1) for i in range(5)}
WL = FsWorkloadConfig(n_operations=4000, duration=2000.0, seed=4,
                      popularity_skew=1.2)


def make_ops():
    gen_cluster = MetadataCluster(["gen"], ROOTS)
    return generate_operations(gen_cluster, WL)


def make_sim(ops, **overrides) -> FullSystemSimulation:
    cfg_kwargs = dict(
        server_speeds=SPEEDS,
        fileset_roots=ROOTS,
        tuning_interval=120.0,
        sample_window=60.0,
        mean_op_cost=0.2,
        seed=1,
    )
    cfg_kwargs.update(overrides)
    sim = FullSystemSimulation(FullSystemConfig(**cfg_kwargs), ops)
    populate(sim.cluster, WL)
    return sim


def test_config_validation():
    with pytest.raises(ValueError):
        FullSystemConfig(server_speeds={}, fileset_roots=ROOTS)
    with pytest.raises(ValueError):
        FullSystemConfig(server_speeds={"a": 0.0}, fileset_roots=ROOTS)
    with pytest.raises(ValueError):
        FullSystemConfig(server_speeds={"a": 1.0}, fileset_roots=ROOTS,
                         move_delay_min=5.0, move_delay_max=1.0)


def test_all_operations_execute_exactly_once():
    ops = make_ops()
    sim = make_sim(ops)
    result = sim.run()
    assert result.ops_completed + result.ops_failed == len(ops)
    assert result.failures == []
    assert result.ops_failed == 0


def test_tuning_happens_and_moves_images():
    ops = make_ops()
    sim = make_sim(ops)
    result = sim.run()
    assert result.tuning_rounds >= 10
    assert result.moves > 0


def test_final_state_equals_untimed_replay():
    ops = make_ops()
    # Timed, tuned, reconfiguring run.
    sim = make_sim(ops)
    timed = sim.run()
    # Untimed single-server reference replay.
    ref = MetadataCluster(["ref"], ROOTS)
    populate(ref, WL)
    for op in ops:
        _, res = ref.submit(op)
        assert res.ok, (op, res.error)
    # Compare every file set's namespace content.
    for fileset in ref.registry.filesets:
        ref_ns = ref.services["ref"]._owned[fileset]
        owner = timed.cluster.owner_of(fileset)
        timed_ns = timed.cluster.services[owner]._owned[fileset]
        ref_paths = {p for p, _ in ref_ns.walk()}
        timed_paths = {p for p, _ in timed_ns.walk()}
        assert ref_paths == timed_paths, fileset


def test_latency_series_produced():
    ops = make_ops()
    result = make_sim(ops).run()
    assert set(result.series.servers) == set(SPEEDS)
    total = sum(result.series.counts[s].sum() for s in result.series.servers)
    assert total == result.ops_completed + result.ops_failed


def test_deterministic_replay():
    ops = make_ops()
    r1 = make_sim(ops).run()
    r2 = make_sim(make_ops()).run()
    assert r1.moves == r2.moves
    assert r1.ops_completed == r2.ops_completed
    for s in r1.series.servers:
        assert list(r1.series.counts[s]) == list(r2.series.counts[s])


def test_tuning_shifts_load_away_from_slow_server():
    ops = make_ops()
    result = make_sim(ops).run()
    counts = {
        s: float(result.series.counts[s][-10:].sum())
        for s in result.series.servers
    }
    total = sum(counts.values()) or 1.0
    # The slowest server ends with (much) less than its fair count share.
    assert counts["server0"] / total < 0.2


def test_empty_operation_stream():
    sim = make_sim([])
    result = sim.run()
    assert result.ops_completed == 0
    assert result.moves == 0
