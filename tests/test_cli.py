"""Tests for the CLI entry point."""

import pytest

from repro.experiments.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "fig6" in out


def test_fig3_demo(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "server heterogeneity" in out
    assert "final shares" in out


def test_fig4_demo(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "workload heterogeneity" in out


def test_fig5_demo(capsys):
    assert main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "boundaries preserved: True" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_quick_simulation_runs(capsys):
    assert main(["fig9", "--quick", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "prescient" in out and "anu" in out
    assert "policy" in out  # comparison table header
