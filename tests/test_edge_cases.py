"""Edge-case and interaction tests across modules."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulation,
    FaultSchedule,
    paper_servers,
)
from repro.metrics.latency import LatencyCollector
from repro.placement import ANUPolicy
from repro.workloads import SyntheticConfig, generate_synthetic


# ----------------------------------------------------------------------
# Latency percentiles
# ----------------------------------------------------------------------
def test_percentiles_basic():
    c = LatencyCollector()
    for i in range(100):
        c.record("s1", float(i), i / 100.0)
    assert c.percentile(50.0, "s1") == pytest.approx(0.495, abs=0.01)
    assert c.percentile(100.0, "s1") == pytest.approx(0.99)
    assert c.percentile(0.0, "s1") == pytest.approx(0.0)


def test_percentiles_windowed_and_pooled():
    c = LatencyCollector()
    c.record("a", 1.0, 0.1)
    c.record("a", 100.0, 0.9)
    c.record("b", 1.0, 0.5)
    assert c.percentile(100.0, "a", start=0.0, end=10.0) == pytest.approx(0.1)
    # Pooled across servers.
    assert c.percentile(100.0) == pytest.approx(0.9)
    assert c.percentile(50.0) == pytest.approx(0.5)


def test_percentiles_empty_and_validation():
    c = LatencyCollector()
    assert c.percentile(95.0, "ghost") == 0.0
    with pytest.raises(ValueError):
        c.percentile(101.0)
    summary = c.tail_summary()
    assert summary == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


def test_tail_summary_ordering():
    c = LatencyCollector()
    for i in range(1000):
        c.record("s", float(i), (i % 100) / 100.0)
    s = c.tail_summary("s")
    assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"]


# ----------------------------------------------------------------------
# Mid-move membership change (redirect path)
# ----------------------------------------------------------------------
def test_fileset_mid_move_when_destination_fails():
    """A membership change while moves are in flight redirects them; the
    simulation still completes everything."""
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=8000, duration=1200.0,
                        seed=8)
    )
    # Fail a server shortly after a tuning round (t=240+5s): some moves
    # started at t=240 are likely still in flight.
    faults = FaultSchedule().fail(245.0, "server3")
    cfg = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                        sample_window=60.0, seed=3)
    res = ClusterSimulation(cfg, ANUPolicy(), trace, faults).run()
    assert res.total_requests == len(trace)
    assert all(s != "server3" for s in res.final_assignment.values())


def test_back_to_back_membership_changes():
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=40, n_requests=5000, duration=1000.0,
                        seed=9)
    )
    faults = (
        FaultSchedule()
        .fail(300.0, "server1")
        .fail(301.0, "server2")
        .recover(600.0, "server1")
        .recover(601.0, "server2")
    )
    cfg = ClusterConfig(servers=paper_servers(), seed=4)
    res = ClusterSimulation(cfg, ANUPolicy(), trace, faults).run()
    assert res.total_requests == len(trace)


def test_delegate_crash_every_interval_still_works():
    """Pathological: the delegate crashes before every single round — the
    stateless protocol degrades to threshold+top-off but keeps working."""
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=40, n_requests=5000, duration=1200.0,
                        seed=10)
    )
    faults = FaultSchedule()
    for t in range(110, 1200, 120):
        faults.delegate_crash(float(t))
    cfg = ClusterConfig(servers=paper_servers(), seed=5)
    res = ClusterSimulation(cfg, ANUPolicy(), trace, faults).run()
    assert res.total_requests == len(trace)
    assert res.moves_started > 0  # tuning still happened


# ----------------------------------------------------------------------
# Trace at exactly the tuning boundary
# ----------------------------------------------------------------------
def test_trace_shorter_than_tuning_interval():
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=10, n_requests=300, duration=60.0)
    )
    cfg = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                        seed=0)
    res = ClusterSimulation(cfg, ANUPolicy(), trace).run()
    assert res.total_requests == 300
    assert res.tuning_rounds == 0  # never reached a round


def test_trace_duration_exact_multiple_of_interval():
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=10, n_requests=1200, duration=360.0)
    )
    cfg = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                        seed=0)
    res = ClusterSimulation(cfg, ANUPolicy(), trace).run()
    assert res.tuning_rounds == 3
