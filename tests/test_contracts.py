"""The runtime contract layer: invariants actually fire under pytest.

The acceptance bar: an intentionally-broken interval mutation raises
:class:`~repro.contracts.ContractViolation`; the ``REPRO_CONTRACTS=off``
environment compiles the layer out entirely (no wrappers at all); and
the dynamic toggle lets a single process measure both sides.
"""

import os
import subprocess
import sys

import pytest

from repro import contracts
from repro.contracts import (
    ContractViolation,
    checks_invariants,
    ensure,
    invariant,
    preserves,
    require,
    set_contracts,
)
from repro.core.anu import ANUPlacement
from repro.core.interval import HALF, MappedInterval
from repro.core.tuning import DelegateTuner, ServerReport


@pytest.fixture(autouse=True)
def _contracts_on():
    """Every test here runs with checking enabled, restored afterwards."""
    previous = set_contracts(True)
    yield
    set_contracts(previous)


def test_contracts_are_active_under_pytest():
    assert not contracts.COMPILED_OUT
    assert contracts.contracts_enabled()


# ----------------------------------------------------------------------
# The headline: a broken interval mutation raises
# ----------------------------------------------------------------------
def test_corrupted_interval_raises_on_next_mutation():
    iv = MappedInterval(["a", "b", "c"])
    iv._shares["a"] += 1  # break half-occupancy behind the API's back
    with pytest.raises(ContractViolation, match="set_shares"):
        iv.set_shares({"a": 1.0, "b": 1.0, "c": 1.0})


def test_corrupted_interval_raises_through_anu_layer():
    placement = ANUPlacement(["a", "b"])
    placement.interval._prefix[0] += 1  # desync prefix from share records
    with pytest.raises(ContractViolation):
        placement.set_shares({"a": 2.0, "b": 1.0})


def test_healthy_mutations_pass_all_contracts():
    iv = MappedInterval(["a", "b"])
    iv.set_shares({"a": 3.0, "b": 1.0})
    iv.add_server("c")
    iv.remove_server("a")
    iv.repartition()
    assert sum(iv.shares().values()) == HALF


def test_toggle_disables_and_reenables_checking():
    iv = MappedInterval(["a", "b"])
    iv._shares["a"] += 1
    set_contracts(False)
    try:
        iv.set_shares({"a": 1.0, "b": 1.0})  # corrupted, but unchecked
    finally:
        set_contracts(True)
    # Re-enabled: the lingering corruption is caught on the next mutation.
    iv._shares["a"] += 1
    with pytest.raises(ContractViolation):
        iv.set_shares({"a": 1.0, "b": 1.0})


# ----------------------------------------------------------------------
# Decorator / helper semantics
# ----------------------------------------------------------------------
class _Box:
    """Toy object with a checkable invariant (value must stay >= 0)."""

    def __init__(self) -> None:
        self.value = 0

    @checks_invariants
    def add(self, delta: int) -> None:
        """Mutate; the contract validates afterwards."""
        self.value += delta

    def check_invariants(self) -> None:
        """Raise when the box went negative."""
        if self.value < 0:
            raise ValueError(f"negative value {self.value}")


def test_checks_invariants_wraps_and_chains_cause():
    box = _Box()
    box.add(5)
    with pytest.raises(ContractViolation) as excinfo:
        box.add(-9)
    assert isinstance(excinfo.value.__cause__, ValueError)
    assert "add" in str(excinfo.value)


def test_preserves_detects_state_change():
    class Holder:
        def __init__(self):
            self.frozen = [1, 2]
            self.free = 0

        @preserves(lambda self: list(self.frozen), message="frozen moved")
        def ok(self):
            self.free += 1

        @preserves(lambda self: list(self.frozen), message="frozen moved")
        def bad(self):
            self.frozen.append(3)

    h = Holder()
    h.ok()
    with pytest.raises(ContractViolation, match="frozen moved"):
        h.bad()


def test_invariant_predicate_decorator():
    class Gauge:
        def __init__(self):
            self.level = 0

        @invariant(lambda self: self.level <= 10, "overflow")
        def fill(self, amount):
            self.level += amount

    g = Gauge()
    g.fill(10)
    with pytest.raises(ContractViolation, match="overflow"):
        g.fill(1)


def test_require_and_ensure_helpers():
    require(True, "never shown")
    ensure(True, "never shown")
    with pytest.raises(ContractViolation, match="precondition"):
        require(False, "value {} out of range", 7)
    with pytest.raises(ContractViolation, match="postcondition"):
        ensure(False, "sum drifted")


def test_repartition_boundary_preservation_contract_is_wired():
    iv = MappedInterval(["a", "b"], shares={"a": 3.0, "b": 2.0})
    before = {s: iv.segments(s) for s in iv.servers}
    iv.repartition()
    assert {s: iv.segments(s) for s in iv.servers} == before


# ----------------------------------------------------------------------
# Tuner postconditions
# ----------------------------------------------------------------------
def test_tuner_factor_clamp_contract(monkeypatch):
    tuner = DelegateTuner()
    monkeypatch.setattr(
        DelegateTuner,
        "_factor",
        lambda self, latency, avg, request_count: 1000.0,
    )
    reports = [
        ServerReport("a", 50.0, 100),
        ServerReport("b", 1.0, 100),
        ServerReport("c", 1.0, 100),
    ]
    with pytest.raises(ContractViolation, match="max_step"):
        tuner.compute({"a": 1.0, "b": 1.0, "c": 1.0}, reports)


# ----------------------------------------------------------------------
# Environment compile-out
# ----------------------------------------------------------------------
def _run_python(code: str, **env_overrides) -> None:
    env = dict(os.environ, **env_overrides)
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run([sys.executable, "-c", code], check=True, env=env)


def test_env_off_compiles_wrappers_out():
    _run_python(
        "import repro.contracts as c\n"
        "from repro.core.interval import MappedInterval\n"
        "assert c.COMPILED_OUT\n"
        "assert not hasattr(MappedInterval.set_shares, '__wrapped__')\n"
        "iv = MappedInterval(['a', 'b'])\n"
        "iv._shares['a'] += 1\n"
        "iv.set_shares({'a': 1.0, 'b': 1.0})  # corrupted but never checked\n",
        REPRO_CONTRACTS="off",
    )


def test_env_on_installs_wrappers():
    _run_python(
        "import repro.contracts as c\n"
        "from repro.core.interval import MappedInterval\n"
        "assert not c.COMPILED_OUT\n"
        "assert hasattr(MappedInterval.set_shares, '__wrapped__')\n",
        REPRO_CONTRACTS="on",
    )
