"""Property-based tests (hypothesis) for the interval invariants.

These drive random sequences of operations — share rescaling, server
add/remove, repartitioning — and assert the paper's structural invariants
after every step (exactly, thanks to integer tick arithmetic):

- half occupancy: mapped ticks sum to exactly HALF;
- partition exclusivity, at most one partial partition per server;
- a wholly-free partition always exists;
- p >= 2*(n+1);
- repartitioning never moves a point's owner;
- shrinking a server never grows its region.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interval import HALF, IntervalError, MappedInterval

server_counts = st.integers(min_value=1, max_value=9)
shares_lists = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=9
)


def make_interval(n: int) -> MappedInterval:
    return MappedInterval([f"s{i}" for i in range(n)])


@given(n=server_counts)
def test_initial_interval_satisfies_invariants(n):
    iv = make_interval(n)
    iv.check_invariants()
    assert sum(iv.shares().values()) == HALF


@given(
    n=st.integers(min_value=2, max_value=8),
    weights=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=2,
        max_size=8,
    ),
)
def test_set_shares_preserves_invariants(n, weights):
    iv = make_interval(n)
    names = iv.servers
    padded = (weights * n)[:n]
    if sum(padded) <= 0:
        padded[0] = 1.0
    iv.set_shares(dict(zip(names, padded)))
    iv.check_invariants()


@given(
    seed_weights=st.lists(
        st.floats(min_value=0.01, max_value=20.0, allow_nan=False),
        min_size=3,
        max_size=6,
    ),
    rounds=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_rescale_sequences_hold_invariants(seed_weights, rounds, data):
    n = len(seed_weights)
    iv = make_interval(n)
    names = iv.servers
    for _ in range(rounds):
        new = {
            name: data.draw(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
            )
            for name in names
        }
        if sum(new.values()) <= 0:
            new[names[0]] = 1.0
        iv.set_shares(new)
        iv.check_invariants()
        assert sum(iv.shares().values()) == HALF


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_membership_change_sequences_hold_invariants(data):
    iv = make_interval(3)
    next_id = 3
    for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
        add = data.draw(st.booleans())
        if add or iv.n_servers == 1:
            iv.add_server(f"s{next_id}")
            next_id += 1
        else:
            victim = data.draw(st.sampled_from(iv.servers))
            iv.remove_server(victim)
        iv.check_invariants()
        assert iv.partitions >= 2 * (iv.n_servers + 1)
        assert iv.free_partitions()


@given(
    n=st.integers(min_value=1, max_value=6),
    shares=st.lists(
        st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=40, deadline=None)
def test_repartition_never_moves_a_point(n, shares):
    iv = make_interval(n)
    padded = (shares * n)[:n]
    iv.set_shares(dict(zip(iv.servers, padded)))
    probes = [i / 509 for i in range(509)]
    before = [iv.locate_point(x) for x in probes]
    iv.repartition()
    iv.check_invariants()
    assert [iv.locate_point(x) for x in probes] == before


@given(
    n=st.integers(min_value=2, max_value=6),
    shrink_idx=st.integers(min_value=0, max_value=5),
)
def test_shrinking_server_keeps_subset_of_region(n, shrink_idx):
    iv = make_interval(n)
    victim = iv.servers[shrink_idx % n]
    before = iv.segments(victim)
    shares = {s: 1.0 for s in iv.servers}
    shares[victim] = 0.25
    iv.set_shares(shares)
    iv.check_invariants()
    for seg in iv.segments(victim):
        assert any(
            old.start <= seg.start and seg.end <= old.end for old in before
        ), f"{victim} gained space while shrinking"


@given(n=st.integers(min_value=2, max_value=6), data=st.data())
@settings(max_examples=40, deadline=None)
def test_locate_point_matches_share_fractions(n, data):
    """Empirical hit rate of each server ~ its share fraction."""
    iv = make_interval(n)
    weights = {
        s: data.draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        for s in iv.servers
    }
    iv.set_shares(weights)
    grid = 2048
    hits = {s: 0 for s in iv.servers}
    unmapped = 0
    for i in range(grid):
        owner = iv.locate_point((i + 0.5) / grid)
        if owner is None:
            unmapped += 1
        else:
            hits[owner] += 1
    assert abs(unmapped / grid - 0.5) < 0.02
    for s in iv.servers:
        assert abs(hits[s] / grid - iv.share_fraction(s)) < 0.02


@given(n=server_counts)
def test_remove_then_add_round_trip(n):
    iv = make_interval(n)
    iv.add_server("extra")
    iv.check_invariants()
    iv.remove_server("extra")
    iv.check_invariants()
    assert set(iv.servers) == {f"s{i}" for i in range(n)}
