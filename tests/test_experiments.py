"""Tests for the experiment harness: configs, runner, demos, reporting."""

import pytest

from repro.experiments.config import FIGURES, figure6, figure8, figure10, figure11
from repro.experiments.figures import (
    figure3_demo,
    figure4_demo,
    figure5_demo,
    run_figure,
)
from repro.experiments.report import (
    comparison_table,
    interval_bar,
    render_experiment,
    series_block,
    sparkline,
)
from repro.experiments.runner import (
    available_policies,
    generate_trace,
    make_policy,
    run_policy,
)
from repro.workloads.dfstrace import DFSTraceLikeConfig
from repro.workloads.synthetic import SyntheticConfig


# ----------------------------------------------------------------------
# Configs
# ----------------------------------------------------------------------
def test_all_figures_registered():
    assert set(FIGURES) == {"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}


def test_figure6_paper_parameters():
    cfg = figure6()
    assert cfg.dfstrace is not None
    assert cfg.dfstrace.n_requests == 112_590
    assert cfg.dfstrace.n_filesets == 21
    assert cfg.cluster.tuning_interval == 120.0
    speeds = sorted(cfg.cluster.speeds.values())
    assert speeds == [1.0, 3.0, 5.0, 7.0, 9.0]
    assert set(cfg.policies) == {
        "simple-random", "round-robin", "prescient", "anu",
    }


def test_figure8_paper_parameters():
    cfg = figure8()
    assert cfg.synthetic is not None
    assert cfg.synthetic.n_filesets == 500
    assert cfg.synthetic.n_requests == 100_000
    assert cfg.synthetic.duration == 10_000.0


def test_quick_configs_are_smaller():
    assert figure6(quick=True).dfstrace.n_requests < figure6().dfstrace.n_requests
    assert figure8(quick=True).synthetic.n_requests < figure8().synthetic.n_requests


def test_figure10_and_11_policy_sets():
    assert figure10().policies == ("anu-aggressive", "anu")
    assert set(figure11().policies) == {
        "anu-threshold-only", "anu-top-off-only", "anu-divergent-only",
    }


def test_workload_config_accessor():
    assert isinstance(figure6().workload_config(), DFSTraceLikeConfig)
    assert isinstance(figure8().workload_config(), SyntheticConfig)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def test_available_policies_cover_paper_and_extensions():
    names = available_policies()
    for expected in ("anu", "simple-random", "round-robin", "prescient",
                     "consistent-hash", "anu-decentralized"):
        assert expected in names


def test_make_policy_fresh_instances():
    a = make_policy("anu")
    b = make_policy("anu")
    assert a is not b


def test_make_policy_unknown():
    with pytest.raises(ValueError):
        make_policy("quantum")


def test_generate_trace_dispatch():
    t = generate_trace(SyntheticConfig(n_filesets=5, n_requests=100, duration=10.0))
    assert len(t) == 100
    t2 = generate_trace(DFSTraceLikeConfig(n_requests=100))
    assert len(t2) == 100
    with pytest.raises(TypeError):
        generate_trace(object())  # type: ignore[arg-type]


def test_run_policy_smoke():
    cfg = figure8(quick=True)
    trace = generate_trace(
        SyntheticConfig(n_filesets=20, n_requests=1000, duration=400.0)
    )
    res = run_policy("round-robin", trace, cfg.cluster)
    assert res.total_requests == 1000


# ----------------------------------------------------------------------
# Figure 3/4/5 demos
# ----------------------------------------------------------------------
def test_figure3_fast_servers_end_with_more_load():
    demo = figure3_demo()
    fast = demo.final_counts["server1"] + demo.final_counts["server2"]
    slow = demo.final_counts["server3"] + demo.final_counts["server4"]
    assert fast > slow
    assert demo.final_latency_spread < 1.5
    demo.placement.check_invariants()


def test_figure3_fast_regions_grow():
    demo = figure3_demo()
    fast_share = demo.final_shares["server1"] + demo.final_shares["server2"]
    slow_share = demo.final_shares["server3"] + demo.final_shares["server4"]
    assert fast_share > slow_share


def test_figure4_balances_skewed_workload():
    demo = figure4_demo()
    # Indivisible skewed file sets cannot be balanced exactly (the paper's
    # §6 point); tuning must still clearly improve on the initial state.
    assert demo.final_latency_spread < demo.initial_latency_spread
    assert demo.final_latency_spread < 2.5
    demo.placement.check_invariants()


def test_figure5_repartition_properties():
    rep = figure5_demo()
    assert rep.partitions_after >= rep.partitions_before
    assert rep.boundaries_preserved
    assert rep.free_partitions_after >= 1
    assert "server5" in rep.after


# ----------------------------------------------------------------------
# run_figure (quick)
# ----------------------------------------------------------------------
def test_run_figure_unknown_id():
    with pytest.raises(ValueError):
        run_figure("fig99")


def test_run_figure_quick_fig7_shapes():
    config, results = run_figure("fig7", quick=True)
    assert set(results) == {"prescient", "anu"}
    for res in results.values():
        assert res.total_requests == config.dfstrace.n_requests


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_sparkline_basic():
    assert sparkline([]) == ""
    assert len(sparkline([1.0] * 100, width=40)) == 40
    assert sparkline([0.0, 0.0]) == "▁▁"
    s = sparkline([0.0, 1.0])
    assert s[0] == "▁" and s[-1] == "█"


def test_series_block_and_tables_render(capsys=None):
    trace = generate_trace(
        SyntheticConfig(n_filesets=10, n_requests=500, duration=300.0)
    )
    cfg = figure8(quick=True)
    res = run_policy("round-robin", trace, cfg.cluster)
    block = series_block("[rr]", res.series)
    assert "[rr]" in block and "server0" in block
    table = comparison_table({"round-robin": res})
    assert "round-robin" in table
    full = render_experiment("figX", "desc", {"round-robin": res})
    assert "figX" in full


def test_interval_bar_renders_all_servers():
    from repro.core import MappedInterval

    iv = MappedInterval(["a", "b"])
    bar = interval_bar(iv, width=40)
    assert "0=a" in bar and "1=b" in bar
    assert "." in bar  # unmapped half visible
