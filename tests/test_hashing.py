"""Unit tests for the placement hash family."""

import numpy as np
import pytest

from repro.core.hashing import HashFamily, hash64, hash_to_choice, hash_to_unit


def test_hash64_deterministic_across_calls():
    assert hash64("fileset-a", 0) == hash64("fileset-a", 0)


def test_hash64_varies_by_round():
    values = {hash64("fileset-a", r) for r in range(16)}
    assert len(values) == 16


def test_hash64_varies_by_namespace():
    assert hash64("x", 0, "a") != hash64("x", 0, "b")


def test_hash_to_unit_in_range():
    for i in range(100):
        x = hash_to_unit(f"name-{i}", 0)
        assert 0.0 <= x < 1.0


def test_hash_to_unit_roughly_uniform():
    xs = np.array([hash_to_unit(f"n{i}", 0) for i in range(5000)])
    # Chi-square over 10 equal buckets; loose bound.
    counts, _ = np.histogram(xs, bins=10, range=(0, 1))
    expected = 500
    chi2 = ((counts - expected) ** 2 / expected).sum()
    assert chi2 < 30  # df=9, p ~ 0.0005 cutoff


def test_hash_to_choice_range_and_determinism():
    for n in (1, 2, 7):
        c = hash_to_choice("abc", 3, n)
        assert 0 <= c < n
        assert c == hash_to_choice("abc", 3, n)


def test_hash_to_choice_rejects_empty():
    with pytest.raises(ValueError):
        hash_to_choice("abc", 0, 0)


def test_negative_round_rejected():
    with pytest.raises(ValueError):
        hash64("x", -1)


def test_family_probe_sequence_matches_probes():
    family = HashFamily(max_rounds=5)
    probes = family.probes("fs1")
    assert len(probes) == 5
    assert probes == [family.probe("fs1", r) for r in range(5)]


def test_family_probe_beyond_rounds_rejected():
    family = HashFamily(max_rounds=3)
    with pytest.raises(ValueError):
        family.probe("fs1", 3)


def test_family_requires_positive_rounds():
    with pytest.raises(ValueError):
        HashFamily(max_rounds=0)


def test_fallback_choice_order_independent():
    family = HashFamily()
    a = family.fallback_choice("fs9", ["s2", "s0", "s1"])
    b = family.fallback_choice("fs9", ["s0", "s1", "s2"])
    assert a == b
    assert a in {"s0", "s1", "s2"}


def test_fallback_choice_empty_rejected():
    family = HashFamily()
    with pytest.raises(ValueError):
        family.fallback_choice("fs9", [])


def test_probe_rounds_look_independent():
    """Across many names, round-0 and round-1 probes are uncorrelated."""
    family = HashFamily()
    p0 = np.array([family.probe(f"n{i}", 0) for i in range(2000)])
    p1 = np.array([family.probe(f"n{i}", 1) for i in range(2000)])
    corr = np.corrcoef(p0, p1)[0, 1]
    assert abs(corr) < 0.08


def test_hash_to_unit_clamps_top_of_range_digests(monkeypatch):
    """Digests within half an ULP of 2**64 must not divide to 1.0.

    ``(2**64 - 1) / 2**64`` rounds to exactly 1.0 under float division;
    locate_point's domain is [0, 1), so hash_to_unit clamps to the largest
    double below 1.0 instead.
    """
    import math

    from repro.core import hashing

    for digest in (2**64 - 1, 2**64 - 2**9, 2**64 - 2**10):
        assert digest / float(2**64) == 1.0  # the hazard being guarded
        monkeypatch.setattr(hashing, "hash64", lambda *a, **k: digest)
        x = hashing.hash_to_unit("any", 0)
        assert x == math.nextafter(1.0, 0.0)
        assert 0.0 <= x < 1.0


def test_hash_to_unit_clamp_leaves_ordinary_digests_untouched(monkeypatch):
    from repro.core import hashing

    digest = 2**63 + 12345
    monkeypatch.setattr(hashing, "hash64", lambda *a, **k: digest)
    assert hashing.hash_to_unit("any", 0) == digest / float(2**64)


def test_clamped_probe_is_locatable():
    """End-to-end: the clamp ceiling feeds locate_point without error."""
    import math

    from repro.core.interval import MappedInterval

    iv = MappedInterval(["a", "b"])
    result = iv.locate_point(math.nextafter(1.0, 0.0))
    assert result is None or isinstance(result, str)
