"""Unit tests for pair-wise decentralized tuning (§5 future work)."""

import numpy as np
import pytest

from repro.core.decentralized import PairwiseConfig, PairwiseTuner
from repro.core.tuning import ServerReport


def reports(lat: dict[str, float]) -> list[ServerReport]:
    return [ServerReport(k, v, 100 if v > 0 else 0) for k, v in lat.items()]


def test_config_validation():
    with pytest.raises(ValueError):
        PairwiseConfig(max_transfer_fraction=1.0)
    with pytest.raises(ValueError):
        PairwiseConfig(gain=0.0)


def test_pairing_is_disjoint_and_complete():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(0)
    names = [f"s{i}" for i in range(6)]
    pairs = tuner.pair(names, rng)
    flat = [x for pair in pairs for x in pair]
    assert len(pairs) == 3
    assert sorted(flat) == sorted(names)


def test_odd_count_one_sits_out():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(0)
    pairs = tuner.pair(["a", "b", "c"], rng)
    assert len(pairs) == 1


def test_exchange_conserves_total_share():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(1)
    shares = {"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
    new, exchanges = tuner.compute(
        shares, reports({"a": 5.0, "b": 0.1, "c": 4.0, "d": 0.2}), rng
    )
    assert sum(new.values()) == pytest.approx(sum(shares.values()))
    assert exchanges  # the latency gaps exceed the threshold


def test_share_flows_from_slow_to_fast():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(2)
    shares = {"a": 1.0, "b": 1.0}
    new, exchanges = tuner.compute(
        shares, reports({"a": 5.0, "b": 0.1}), rng
    )
    assert len(exchanges) == 1
    ex = exchanges[0]
    assert ex.donor == "a" and ex.recipient == "b"
    assert new["a"] < 1.0 < new["b"]


def test_within_threshold_no_exchange():
    tuner = PairwiseTuner(PairwiseConfig(threshold=0.5))
    rng = np.random.default_rng(3)
    shares = {"a": 1.0, "b": 1.0}
    new, exchanges = tuner.compute(shares, reports({"a": 1.0, "b": 1.1}), rng)
    assert exchanges == []
    assert new == shares


def test_idle_pair_skipped():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(4)
    shares = {"a": 1.0, "b": 1.0}
    new, exchanges = tuner.compute(
        shares, [ServerReport("a", 0.0, 0), ServerReport("b", 0.0, 0)], rng
    )
    assert exchanges == []


def test_transfer_bounded_by_max_fraction():
    cfg = PairwiseConfig(max_transfer_fraction=0.1, gain=10.0)
    tuner = PairwiseTuner(cfg)
    rng = np.random.default_rng(5)
    shares = {"a": 1.0, "b": 1.0}
    new, exchanges = tuner.compute(shares, reports({"a": 100.0, "b": 0.01}), rng)
    assert exchanges[0].amount <= 0.1 * 2.0 + 1e-12


def test_mismatched_reports_rejected():
    tuner = PairwiseTuner()
    rng = np.random.default_rng(6)
    with pytest.raises(ValueError):
        tuner.compute({"a": 1.0}, reports({"a": 1.0, "b": 2.0}), rng)


def test_repeated_rounds_converge_latency_proxy():
    """Iterating exchanges balances a share-attracts-load latency proxy.

    Model: each server's load is proportional to its share (the mapped
    region attracts that fraction of the workload) and its latency is
    load / capacity.  Balance means share proportional to capacity.
    """
    tuner = PairwiseTuner(PairwiseConfig(threshold=0.1))
    rng = np.random.default_rng(7)
    capacity = {"a": 8.0, "b": 1.0, "c": 2.0, "d": 5.0}
    shares = {k: 1.0 for k in capacity}

    def latencies():
        total = sum(shares.values())
        return {k: (shares[k] / total) / capacity[k] for k in capacity}

    for _ in range(60):
        shares, _ = tuner.compute(shares, reports(latencies()), rng)
    lat = np.array(list(latencies().values()))
    assert lat.max() / lat.mean() < 1.5
