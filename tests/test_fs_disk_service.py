"""Unit tests for the shared disk and the metadata service."""

import pytest

from repro.fs.disk import DiskError, SharedDisk
from repro.fs.locks import LockMode
from repro.fs.namespace import FSError, Namespace
from repro.fs.ops import Operation, OpType
from repro.fs.service import MetadataService


# ----------------------------------------------------------------------
# SharedDisk
# ----------------------------------------------------------------------
def test_format_flush_load_cycle():
    disk = SharedDisk()
    ns = Namespace("fs0")
    disk.format_fileset(ns)
    ns.create("/a")
    disk.flush(ns, server="s1", now=1.0)
    loaded = disk.load("fs0")
    assert loaded.exists("/a")
    assert disk.generation("fs0") == ns.generation
    assert disk.record("fs0").flushed_by == "s1"


def test_double_format_rejected():
    disk = SharedDisk()
    disk.format_fileset(Namespace("fs0"))
    with pytest.raises(DiskError):
        disk.format_fileset(Namespace("fs0"))


def test_flush_unformatted_rejected():
    disk = SharedDisk()
    with pytest.raises(DiskError):
        disk.flush(Namespace("ghost"), server="s1")


def test_stale_flush_fenced():
    """A deposed owner must not clobber the new owner's image."""
    disk = SharedDisk()
    ns = Namespace("fs0")
    disk.format_fileset(ns)
    old_copy = Namespace.from_image(ns.to_image())  # stale snapshot
    ns.create("/new")                               # new owner advances
    disk.flush(ns, server="new-owner")
    with pytest.raises(DiskError):
        disk.flush(old_copy, server="old-owner")
    assert disk.load("fs0").exists("/new")


def test_load_missing_rejected():
    disk = SharedDisk()
    with pytest.raises(DiskError):
        disk.load("nope")
    with pytest.raises(DiskError):
        disk.generation("nope")


# ----------------------------------------------------------------------
# MetadataService
# ----------------------------------------------------------------------
def service_with_fileset() -> tuple[MetadataService, SharedDisk]:
    disk = SharedDisk()
    disk.format_fileset(Namespace("fs0"))
    svc = MetadataService("s1", disk)
    svc.acquire_fileset("fs0")
    return svc, disk


def op(kind: OpType, path: str, **args):
    return Operation(op=kind, path=path, client="c1", time=1.0, args=args)


def test_execute_basic_ops():
    svc, _ = service_with_fileset()
    assert svc.execute("fs0", op(OpType.MKDIR, "/d")).ok
    assert svc.execute("fs0", op(OpType.CREATE, "/d/f")).ok
    res = svc.execute("fs0", op(OpType.STAT, "/d/f"))
    assert res.ok and res.value.owner == "c1"
    res = svc.execute("fs0", op(OpType.READDIR, "/d"))
    assert res.value == ["f"]
    assert svc.execute("fs0", op(OpType.SETATTR, "/d/f", size=9)).value.size == 9
    assert svc.execute("fs0", op(OpType.RENAME, "/d/f", dst="/d/g")).ok
    assert svc.execute("fs0", op(OpType.UNLINK, "/d/g")).ok
    assert svc.execute("fs0", op(OpType.RMDIR, "/d")).ok
    assert svc.ops_served == 8


def test_execute_not_owner():
    svc, _ = service_with_fileset()
    res = svc.execute("other", op(OpType.STAT, "/x"))
    assert not res.ok
    assert "not-owner" in res.error
    assert svc.ops_failed == 1


def test_execute_errors_become_results_not_exceptions():
    svc, _ = service_with_fileset()
    res = svc.execute("fs0", op(OpType.STAT, "/missing"))
    assert not res.ok and "NotFound" in res.error
    res = svc.execute("fs0", op(OpType.RENAME, "/a"))  # missing dst
    assert not res.ok
    res = svc.execute("fs0", op(OpType.UNLOCK, "/missing"))
    assert not res.ok


def test_lock_and_unlock_via_ops():
    svc, _ = service_with_fileset()
    svc.execute("fs0", op(OpType.CREATE, "/f"))
    res = svc.execute("fs0", op(OpType.LOCK, "/f", mode=LockMode.EXCLUSIVE))
    assert res.ok and res.value is True
    res2 = svc.execute(
        "fs0",
        Operation(op=OpType.LOCK, path="/f", client="c2", args={"mode": LockMode.EXCLUSIVE}),
    )
    assert res2.ok and res2.value is False  # queued
    assert svc.execute("fs0", op(OpType.UNLOCK, "/f")).ok


def test_lock_missing_file_rejected():
    svc, _ = service_with_fileset()
    res = svc.execute("fs0", op(OpType.LOCK, "/missing"))
    assert not res.ok


def test_release_and_reacquire_fileset():
    svc, disk = service_with_fileset()
    svc.execute("fs0", op(OpType.CREATE, "/persist"))
    svc.release_fileset("fs0", now=2.0)
    assert not svc.owns("fs0")
    svc2 = MetadataService("s2", disk)
    svc2.acquire_fileset("fs0")
    assert svc2.execute("fs0", op(OpType.STAT, "/persist")).ok


def test_double_acquire_and_release_rejected():
    svc, _ = service_with_fileset()
    with pytest.raises(FSError):
        svc.acquire_fileset("fs0")
    svc.release_fileset("fs0")
    with pytest.raises(FSError):
        svc.release_fileset("fs0")


def test_crash_loses_unflushed_updates():
    svc, disk = service_with_fileset()
    svc.flush_all(now=1.0)
    svc.execute("fs0", op(OpType.CREATE, "/lost"))
    lost = svc.crash()
    assert lost == ["fs0"]
    recovered = disk.load("fs0")
    assert not recovered.exists("/lost")  # created after the last flush


def test_recover_client_releases_locks():
    svc, _ = service_with_fileset()
    svc.execute("fs0", op(OpType.CREATE, "/f"))
    svc.execute("fs0", op(OpType.LOCK, "/f", mode=LockMode.EXCLUSIVE))
    waiting = Operation(op=OpType.LOCK, path="/f", client="c2",
                        args={"mode": LockMode.SHARED})
    svc.execute("fs0", waiting)
    promoted = svc.recover_client("c1")
    assert promoted == 1  # c2 unblocked
