"""Unit tests for path handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fs.paths import (
    PathError,
    basename,
    components,
    is_ancestor,
    join,
    normalize,
    parent,
)


def test_normalize_canonical_forms():
    assert normalize("/a/b") == "/a/b"
    assert normalize("//a///b//") == "/a/b"
    assert normalize("/") == "/"


def test_normalize_rejects_bad_paths():
    for bad in ("", "relative", "/a/../b", "/a/./b", "/a\x00b"):
        with pytest.raises(PathError):
            normalize(bad)


def test_components():
    assert components("/") == []
    assert components("/a/b/c") == ["a", "b", "c"]


def test_parent_and_basename():
    assert parent("/a/b/c") == "/a/b"
    assert parent("/a") == "/"
    assert basename("/a/b") == "b"
    with pytest.raises(PathError):
        parent("/")
    with pytest.raises(PathError):
        basename("/")


def test_join():
    assert join("/", "a") == "/a"
    assert join("/a", "b", "c") == "/a/b/c"
    assert join("/a") == "/a"
    with pytest.raises(PathError):
        join("/a", "b/c")
    with pytest.raises(PathError):
        join("/a", "..")
    with pytest.raises(PathError):
        join("/a", "")


def test_is_ancestor():
    assert is_ancestor("/", "/a/b")
    assert is_ancestor("/a", "/a/b")
    assert is_ancestor("/a/b", "/a/b")
    assert not is_ancestor("/a/b", "/a")
    assert not is_ancestor("/a", "/ab")  # component-wise, not prefix-wise


name_st = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
)


@given(parts=st.lists(name_st, min_size=1, max_size=6))
def test_join_parent_roundtrip(parts):
    path = join("/", *parts)
    assert components(path) == parts
    assert basename(path) == parts[-1]
    assert parent(path) == (join("/", *parts[:-1]) if len(parts) > 1 else "/")


@given(parts=st.lists(name_st, min_size=0, max_size=6))
def test_normalize_idempotent(parts):
    path = "/" + "/".join(parts) if parts else "/"
    assert normalize(normalize(path)) == normalize(path)
