"""Tests for the workload CLI."""

import pytest

from repro.workloads import Trace
from repro.workloads.cli import describe, main


def test_gen_synthetic(tmp_path, capsys):
    out = tmp_path / "t.npz"
    assert main(["gen", "--kind", "synthetic", "--out", str(out),
                 "--filesets", "20", "--requests", "500",
                 "--duration", "100", "--seed", "3"]) == 0
    trace = Trace.load(out)
    assert len(trace) == 500
    assert trace.n_filesets == 20
    assert trace.duration == 100.0
    assert "requests:  500" in capsys.readouterr().out


def test_gen_dfstrace_and_shifting(tmp_path):
    for kind in ("dfstrace", "shifting"):
        out = tmp_path / f"{kind}.npz"
        assert main(["gen", "--kind", kind, "--out", str(out),
                     "--requests", "1000"]) == 0
        assert len(Trace.load(out)) == 1000


def test_describe_command(tmp_path, capsys):
    out = tmp_path / "t.npz"
    main(["gen", "--kind", "synthetic", "--out", str(out),
          "--filesets", "10", "--requests", "300", "--duration", "60"])
    capsys.readouterr()
    assert main(["describe", str(out)]) == 0
    text = capsys.readouterr().out
    assert "file sets: 10" in text
    assert "hottest file sets" in text


def test_slice_command(tmp_path, capsys):
    src = tmp_path / "t.npz"
    dst = tmp_path / "cut.npz"
    main(["gen", "--kind", "synthetic", "--out", str(src),
          "--filesets", "10", "--requests", "1000", "--duration", "100"])
    assert main(["slice", str(src), "--start", "20", "--end", "40",
                 "--out", str(dst)]) == 0
    cut = Trace.load(dst)
    assert cut.duration == 20.0
    assert all(20.0 <= t < 40.0 for t in cut.times)


def test_slice_rejects_empty_window(tmp_path):
    src = tmp_path / "t.npz"
    main(["gen", "--kind", "synthetic", "--out", str(src),
          "--requests", "100", "--duration", "10"])
    with pytest.raises(SystemExit):
        main(["slice", str(src), "--start", "5", "--end", "5",
              "--out", str(tmp_path / "x.npz")])


def test_describe_function_empty_trace():
    import numpy as np

    t = Trace(np.empty(0), np.empty(0, dtype=int), np.empty(0), ["a"],
              duration=1.0)
    text = describe(t)
    assert "requests:  0" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
