"""Integration tests for the semantic metadata cluster."""

import pytest

from repro.core.tuning import ServerReport
from repro.fs import (
    ClientError,
    FileSetRegistry,
    FileSystemClient,
    FSError,
    MetadataCluster,
)

ROOTS = {f"fs{i}": f"/projects/p{i}" for i in range(8)}


def make_cluster(servers=("a", "b", "c")) -> MetadataCluster:
    return MetadataCluster(list(servers), ROOTS)


# ----------------------------------------------------------------------
# FileSetRegistry
# ----------------------------------------------------------------------
def test_registry_resolution():
    reg = FileSetRegistry({"fsA": "/a", "fsAB": "/a/b", "fsC": "/c"})
    assert reg.fileset_of("/a/x") == "fsA"
    assert reg.fileset_of("/a/b/x") == "fsAB"  # deepest root wins
    assert reg.fileset_of("/c") == "fsC"
    with pytest.raises(FSError):
        reg.fileset_of("/elsewhere")


def test_registry_relative_paths():
    reg = FileSetRegistry({"fsA": "/a"})
    assert reg.relative("fsA", "/a") == "/"
    assert reg.relative("fsA", "/a/x/y") == "/x/y"
    with pytest.raises(FSError):
        reg.relative("fsA", "/b/x")


def test_registry_validation():
    with pytest.raises(FSError):
        FileSetRegistry({})
    with pytest.raises(FSError):
        FileSetRegistry({"a": "/r", "b": "/r"})


# ----------------------------------------------------------------------
# Cluster basics
# ----------------------------------------------------------------------
def test_client_operations_end_to_end():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    client.mkdir("/projects/p0/src")
    client.create("/projects/p0/src/main.py")
    assert client.exists("/projects/p0/src/main.py")
    assert client.readdir("/projects/p0/src") == ["main.py"]
    client.setattr("/projects/p0/src/main.py", size=100)
    assert client.stat("/projects/p0/src/main.py").size == 100
    client.rename("/projects/p0/src/main.py", "/projects/p0/src/app.py")
    client.unlink("/projects/p0/src/app.py")
    client.rmdir("/projects/p0/src")
    cluster.check_consistency()


def test_errors_surface_as_client_errors():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    with pytest.raises(ClientError):
        client.stat("/projects/p1/missing")
    with pytest.raises(ClientError):
        client.mkdir("/projects/p1/a/b")  # missing parent


def test_cross_fileset_rename_rejected_exdev():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    client.create("/projects/p0/file")
    with pytest.raises(ClientError, match="EXDEV"):
        client.rename("/projects/p0/file", "/projects/p1/file")


def test_locks_routed_to_owner():
    cluster = make_cluster()
    c1 = FileSystemClient(cluster, "c1")
    c2 = FileSystemClient(cluster, "c2")
    c1.create("/projects/p2/data")
    assert c1.lock("/projects/p2/data", exclusive=True) is True
    assert c2.lock("/projects/p2/data", exclusive=True) is False  # queued
    c1.unlock("/projects/p2/data")


def test_ownership_matches_placement():
    cluster = make_cluster()
    cluster.check_consistency()
    for fileset in cluster.registry.filesets:
        assert cluster.owner_of(fileset) == cluster.placement.locate(fileset)


# ----------------------------------------------------------------------
# Retune moves images without losing data
# ----------------------------------------------------------------------
def test_retune_preserves_all_files():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    files = []
    for i in range(8):
        path = f"/projects/p{i}/file{i}"
        client.create(path)
        files.append(path)
    # Force a big skew so something actually moves.
    hot = max(
        cluster.services,
        key=lambda s: len(cluster.services[s].owned_filesets()),
    )
    reports = [
        ServerReport(s, 1.0 if s == hot else 0.01, 100)
        for s in cluster.services
    ]
    moved = cluster.retune(reports)
    cluster.check_consistency()
    for path in files:
        assert client.exists(path), path
    assert cluster.ledger.reconfigurations >= 1
    assert moved >= 0


def test_retune_no_reports_no_moves():
    cluster = make_cluster()
    reports = [ServerReport(s, 0.0, 0) for s in cluster.services]
    assert cluster.retune(reports) == 0


# ----------------------------------------------------------------------
# Failure / membership
# ----------------------------------------------------------------------
def test_crash_recovers_from_last_flushed_image():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    client.create("/projects/p0/durable")
    cluster.checkpoint()                      # flushed to shared disk
    client.create("/projects/p0/volatile")    # NOT flushed
    victim = cluster.owner_of("fs0")
    cluster.fail_server(victim)
    cluster.check_consistency()
    assert client.exists("/projects/p0/durable")
    assert not client.exists("/projects/p0/volatile")  # lost with the crash


def test_graceful_decommission_loses_nothing():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    client.create("/projects/p3/kept")
    victim = cluster.owner_of("fs3")
    cluster.remove_server(victim)
    cluster.check_consistency()
    assert client.exists("/projects/p3/kept")
    assert victim not in cluster.services


def test_add_server_takes_ownership_share():
    cluster = make_cluster(servers=("a", "b"))
    cluster.add_server("c")
    cluster.check_consistency()
    assert "c" in cluster.services


def test_fail_unknown_server_rejected():
    cluster = make_cluster()
    with pytest.raises(FSError):
        cluster.fail_server("ghost")
    with pytest.raises(FSError):
        cluster.remove_server("ghost")
    with pytest.raises(FSError):
        cluster.add_server("a")


def test_operations_work_after_fail_and_add_cycle():
    cluster = make_cluster()
    client = FileSystemClient(cluster)
    client.create("/projects/p5/x")
    cluster.checkpoint()
    cluster.fail_server(cluster.owner_of("fs5"))
    cluster.add_server("fresh")
    cluster.check_consistency()
    assert client.exists("/projects/p5/x")
    client.create("/projects/p5/y")
    assert client.exists("/projects/p5/y")
