"""Validation of the simulator core against queueing theory.

The paper's results are queueing phenomena, so the engine must get the
standard formulas right.  These tests drive a single Facility with Poisson
arrivals and check the measured mean wait against closed forms:

- M/M/1: W_q = rho / (mu - lambda)
- M/D/1: W_q = rho / (2 mu (1 - rho))  (half the M/M/1 wait)

plus PASTA-style sanity (utilization == rho) and stability behaviour.
"""

import numpy as np
import pytest

from repro.sim import Engine, Facility


def run_queue(
    arrival_rate: float,
    service_time_fn,
    n_jobs: int,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Returns (measured mean wait, utilization, duration)."""
    rng = np.random.default_rng(seed)
    engine = Engine()
    fac = Facility(engine, "q")
    t = 0.0
    for _ in range(n_jobs):
        t += rng.exponential(1.0 / arrival_rate)
        engine.schedule_at(t, fac.request, float(service_time_fn(rng)))
    engine.run()
    mon = fac.monitor
    return mon.mean_wait, mon.utilization(engine.now), engine.now


def test_md1_mean_wait_matches_formula():
    lam, service = 0.7, 1.0  # rho = 0.7
    measured, _, _ = run_queue(lam, lambda rng: service, n_jobs=60_000)
    rho = lam * service
    expected = rho * service / (2 * (1 - rho))
    assert measured == pytest.approx(expected, rel=0.08)


def test_mm1_mean_wait_matches_formula():
    lam, mean_service = 0.6, 1.0  # rho = 0.6
    measured, _, _ = run_queue(
        lam, lambda rng: rng.exponential(mean_service), n_jobs=60_000, seed=1
    )
    rho = lam * mean_service
    expected = rho * mean_service / (1 - rho)
    assert measured == pytest.approx(expected, rel=0.10)


def test_md1_wait_is_half_of_mm1():
    lam = 0.65
    det, _, _ = run_queue(lam, lambda rng: 1.0, n_jobs=40_000, seed=2)
    exp, _, _ = run_queue(
        lam, lambda rng: rng.exponential(1.0), n_jobs=40_000, seed=3
    )
    assert det == pytest.approx(exp / 2, rel=0.15)


def test_utilization_equals_rho():
    lam, service = 0.5, 0.8
    _, util, _ = run_queue(lam, lambda rng: service, n_jobs=40_000, seed=4)
    assert util == pytest.approx(lam * service, rel=0.05)


def test_low_load_has_negligible_wait():
    measured, _, _ = run_queue(0.05, lambda rng: 1.0, n_jobs=5_000, seed=5)
    assert measured < 0.06  # rho=0.05 -> W_q ~ 0.026


def test_overloaded_queue_wait_grows_linearly():
    """rho > 1: backlog (and thus wait of the k-th job) grows without
    bound — the mechanism behind the static policies' runaway latency."""
    lam, service = 2.0, 1.0
    rng = np.random.default_rng(6)
    engine = Engine()
    fac = Facility(engine, "q")
    waits: list[float] = []
    t = 0.0
    for i in range(4_000):
        t += rng.exponential(1.0 / lam)

        def on_done(arrival=t):
            waits.append(engine.now - arrival)

        engine.schedule_at(t, fac.request, service, on_done)
    engine.run()
    early = np.mean(waits[:200])
    late = np.mean(waits[-200:])
    assert late > 5 * max(early, 1.0)


def test_heterogeneous_speed_scales_wait():
    """The same workload on a 2x faster server (half the service time)
    has far lower wait — the paper's server-heterogeneity premise."""
    slow, _, _ = run_queue(0.8, lambda rng: 1.0, n_jobs=30_000, seed=7)
    fast, _, _ = run_queue(0.8, lambda rng: 0.5, n_jobs=30_000, seed=7)
    # rho drops 0.8 -> 0.4: W_q(M/D/1) drops 2.0 -> 0.1667, a 12x factor.
    assert slow > 8 * fast
