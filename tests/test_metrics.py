"""Unit tests for latency collection and balance metrics."""

import numpy as np
import pytest

from repro.metrics.balance import (
    balance_summary,
    coefficient_of_variation,
    gini,
    jain_fairness,
    max_over_mean,
)
from repro.metrics.latency import LatencyCollector


# ----------------------------------------------------------------------
# LatencyCollector
# ----------------------------------------------------------------------
def test_interval_report_mean_and_count():
    c = LatencyCollector()
    c.record("s1", 10.0, 0.1)
    c.record("s1", 20.0, 0.3)
    c.record("s1", 130.0, 0.9)
    rep = c.interval_report("s1", 0.0, 100.0)
    assert rep.request_count == 2
    assert rep.mean_latency == pytest.approx(0.2)


def test_interval_report_empty_window():
    c = LatencyCollector()
    rep = c.interval_report("s1", 0.0, 100.0)
    assert rep.request_count == 0
    assert rep.mean_latency == 0.0


def test_reports_cover_absent_servers():
    c = LatencyCollector()
    reps = c.reports(["a", "b"], 0.0, 10.0)
    assert [r.name for r in reps] == ["a", "b"]


def test_negative_latency_rejected():
    c = LatencyCollector()
    with pytest.raises(ValueError):
        c.record("s1", 1.0, -0.1)


def test_series_binning():
    c = LatencyCollector()
    c.ensure_server("quiet")
    c.record("s1", 5.0, 0.2)
    c.record("s1", 15.0, 0.4)
    c.record("s1", 16.0, 0.6)
    series = c.series(duration=30.0, window=10.0)
    assert list(series.times) == [0.0, 10.0, 20.0]
    np.testing.assert_allclose(series.mean_latency["s1"], [0.2, 0.5, 0.0])
    np.testing.assert_allclose(series.counts["s1"], [1, 2, 0])
    # Quiet server present with zeros.
    np.testing.assert_allclose(series.mean_latency["quiet"], [0, 0, 0])


def test_series_clips_samples_beyond_duration():
    c = LatencyCollector()
    c.record("s1", 35.0, 1.0)  # beyond duration; lands in the last window
    series = c.series(duration=30.0, window=10.0)
    assert series.counts["s1"][-1] == 1


def test_series_validation():
    c = LatencyCollector()
    with pytest.raises(ValueError):
        c.series(duration=0.0, window=1.0)
    with pytest.raises(ValueError):
        c.series(duration=10.0, window=0.0)


def test_series_stats_helpers():
    c = LatencyCollector()
    for t, lat in [(1, 0.1), (11, 0.2), (21, 0.9)]:
        c.record("s1", float(t), lat)
    series = c.series(30.0, 10.0)
    assert series.peak("s1") == pytest.approx(0.9)
    assert series.mean_over_run("s1") == pytest.approx(0.4)
    assert series.tail_window_mean("s1", 1) == pytest.approx(0.9)
    assert series.servers == ["s1"]


def test_sample_count():
    c = LatencyCollector()
    c.record("a", 1.0, 0.1)
    c.record("b", 1.0, 0.1)
    assert c.sample_count("a") == 1
    assert c.sample_count() == 2


# ----------------------------------------------------------------------
# Balance metrics
# ----------------------------------------------------------------------
def test_perfect_balance():
    load = {"a": 2.0, "b": 2.0, "c": 2.0}
    assert coefficient_of_variation(load) == 0.0
    assert max_over_mean(load) == 1.0
    assert jain_fairness(load) == pytest.approx(1.0)
    assert gini(load) == pytest.approx(0.0, abs=1e-12)


def test_single_hot_spot():
    load = {"a": 9.0, "b": 0.0, "c": 0.0}
    assert jain_fairness(load) == pytest.approx(1 / 3)
    assert max_over_mean(load) == pytest.approx(3.0)
    assert gini(load) == pytest.approx(2 / 3, abs=1e-9)


def test_capacity_weights_normalize_heterogeneous_servers():
    # Load exactly proportional to speed = balanced after weighting.
    load = {"slow": 1.0, "fast": 9.0}
    weights = {"slow": 1.0, "fast": 9.0}
    assert coefficient_of_variation(load, weights) == 0.0
    assert jain_fairness(load, weights) == pytest.approx(1.0)


def test_sequence_inputs():
    assert max_over_mean([1.0, 3.0]) == pytest.approx(1.5)
    assert coefficient_of_variation([2.0, 2.0]) == 0.0


def test_weight_length_mismatch():
    with pytest.raises(ValueError):
        coefficient_of_variation([1.0, 2.0], [1.0])


def test_weights_must_be_mapping_for_mapping_load():
    with pytest.raises(TypeError):
        max_over_mean({"a": 1.0}, [1.0])  # type: ignore[arg-type]


def test_negative_load_rejected():
    with pytest.raises(ValueError):
        gini([-1.0, 1.0])


def test_empty_and_zero_loads():
    assert coefficient_of_variation([]) == 0.0
    assert max_over_mean([]) == 1.0
    assert jain_fairness([]) == 1.0
    assert gini([0.0, 0.0]) == 0.0


def test_balance_summary_keys():
    summary = balance_summary({"a": 1.0, "b": 2.0})
    assert set(summary) == {"cov", "max_over_mean", "jain", "gini"}


def test_gini_known_value():
    # Two servers, one with everything: gini = 1/2 for n=2.
    assert gini([0.0, 10.0]) == pytest.approx(0.5)
