"""The full system, end to end: timed, tuned, and semantically real.

Run:  python examples/full_system.py

Everything at once — clients issue real metadata operations; operations
queue at heterogeneous FIFO servers; the elected delegate rescales ANU's
mapped regions from observed waits; reconfiguration physically moves
namespace images over the shared disk after a 5-10 s flush/initialize
delay.  At the end, the namespace is byte-identical to an untimed replay
of the same operation stream — placement never loses or misroutes an
operation — while the slow server's load has been tuned away.
"""

from repro.fs import (
    FsWorkloadConfig,
    FullSystemConfig,
    FullSystemSimulation,
    MetadataCluster,
    generate_operations,
    populate,
)

ROOTS = {f"vol{i:02d}": f"/vol{i:02d}" for i in range(16)}
SPEEDS = {f"server{i}": float(2 * i + 1) for i in range(5)}  # 1,3,5,7,9
WORKLOAD = FsWorkloadConfig(
    n_operations=20_000, duration=3_000.0, popularity_skew=1.3, seed=8,
)


def main() -> None:
    ops = generate_operations(MetadataCluster(["gen"], ROOTS), WORKLOAD)
    print(f"operation stream: {len(ops)} metadata ops over "
          f"{WORKLOAD.duration:.0f}s across {len(ROOTS)} file sets")

    sim = FullSystemSimulation(
        FullSystemConfig(
            server_speeds=SPEEDS,
            fileset_roots=ROOTS,
            tuning_interval=120.0,
            mean_op_cost=1.0,
            seed=2,
        ),
        ops,
    )
    populate(sim.cluster, WORKLOAD)
    result = sim.run()

    print(f"\ncompleted: {result.ops_completed}, failed: {result.ops_failed}")
    print(f"tuning rounds: {result.tuning_rounds}, "
          f"file-set images moved over the shared disk: {result.moves}")

    print("\nper-server steady state (last 10 minutes):")
    for server in result.series.servers:
        count = result.series.counts[server][-10:].sum()
        wait = result.series.tail_window_mean(server, 10) * 1000
        print(f"  {server} (speed {SPEEDS[server]:.0f}): "
              f"{count:6.0f} ops, mean wait {wait:7.2f} ms")

    # Verify semantic correctness against an untimed replay.
    ref = MetadataCluster(["ref"], ROOTS)
    populate(ref, WORKLOAD)
    for op in ops:
        ref.submit(op)
    mismatches = 0
    for fileset in ref.registry.filesets:
        ref_ns = ref.services["ref"]._owned[fileset]
        owner = result.cluster.owner_of(fileset)
        timed_ns = result.cluster.services[owner]._owned[fileset]
        if {p for p, _ in ref_ns.walk()} != {p for p, _ in timed_ns.walk()}:
            mismatches += 1
    print(f"\nnamespace equivalence vs untimed replay: "
          f"{len(ROOTS) - mismatches}/{len(ROOTS)} file sets identical")


if __name__ == "__main__":
    main()
