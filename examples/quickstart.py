"""Quickstart: place file sets with ANU randomization and tune from latency.

Run:  python examples/quickstart.py

Walks the public API end to end:
1. build an :class:`repro.ANUPlacement` over a small cluster;
2. locate file sets by hashing (no directory, no I/O);
3. feed observed latencies to the :class:`repro.DelegateTuner` and rescale
   the mapped regions;
4. fail a server and watch only its file sets move.
"""

from collections import Counter

from repro import ANUPlacement, DelegateTuner, ServerReport
from repro.core import diff_assignment
from repro.experiments import interval_bar

SERVERS = ["alpha", "bravo", "charlie"]
FILESETS = [f"/projects/team{i:02d}" for i in range(30)]


def show(title: str, placement: ANUPlacement, assignment: dict[str, str]) -> None:
    counts = Counter(assignment.values())
    shares = {s: round(placement.interval.share_fraction(s), 3) for s in placement.servers}
    print(f"\n{title}")
    print(f"  shares: {shares}")
    print(f"  file sets per server: {dict(sorted(counts.items()))}")
    print("  " + interval_bar(placement.interval).replace("\n", "\n  "))


def main() -> None:
    # 1. Place 30 file sets on 3 servers, no knowledge needed up front.
    placement = ANUPlacement(SERVERS)
    assignment = placement.assignment(FILESETS)
    show("Initial placement (uniform assumption)", placement, assignment)

    # 2. Locating a file set is pure hashing — any node can do it.
    name = FILESETS[7]
    print(f"\nlocate({name!r}) -> {placement.locate(name)!r}  (deterministic, no I/O)")

    # 3. Suppose 'alpha' turns out to be slow: it reports high latency.
    tuner = DelegateTuner()  # all three over-tuning heuristics on
    reports = [
        ServerReport("alpha", mean_latency=0.500, request_count=90),
        ServerReport("bravo", mean_latency=0.050, request_count=110),
        ServerReport("charlie", mean_latency=0.040, request_count=100),
    ]
    decision = tuner.compute(placement.shares(), reports)
    placement.set_shares(decision.new_shares)
    new_assignment = placement.assignment(FILESETS)
    moved = diff_assignment(assignment, new_assignment)
    show("After one tuning round (alpha sheds load)", placement, new_assignment)
    print(f"  moved {moved.moved} of {moved.total} file sets "
          f"({moved.moved_fraction:.0%}); the rest keep their warm caches")

    # 4. Fail 'bravo': survivors absorb only bravo's file sets (plus a few
    #    captures from region growth) — not a global reshuffle.
    placement.remove_server("bravo")
    after_fail = placement.assignment(FILESETS)
    moved = diff_assignment(new_assignment, after_fail)
    show("After bravo fails", placement, after_fail)
    print(f"  moved {moved.moved} of {moved.total} file sets; "
          f"placement state is just the region map — no per-file-set table")


if __name__ == "__main__":
    main()
