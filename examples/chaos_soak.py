"""Chaos soak — stochastic fault injection through the membership core.

Run:  python examples/chaos_soak.py

Instead of a hand-written fault schedule, a seeded FaultInjector draws
crash/repair times from per-server exponential MTTF/MTTR processes and
mixes in decommission/commission churn, producing a *valid* schedule
(replayed against the membership state machine before use).  The same
seed always yields the same schedule, so any chaotic failure is exactly
reproducible.  The schedule then drives the queueing simulation, whose
MembershipDirector re-homes file sets and re-injects orphaned requests
on every event — and every request is still served exactly once.
"""

from collections import Counter

from repro import ClusterConfig, ClusterSimulation, paper_servers
from repro.membership import ChaosProfile, FaultInjector
from repro.placement import ANUPolicy
from repro.units import Seconds
from repro.workloads import SyntheticConfig, generate_synthetic


def main() -> None:
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=40, n_requests=8_000, duration=2_400.0,
            request_cost=0.3, seed=3,
        )
    )
    profile = ChaosProfile(
        mttf=Seconds(500.0),            # mean time to failure, per server
        mttr=Seconds(90.0),             # mean time to repair
        decommission_every=Seconds(900.0),
        commission_every=Seconds(800.0),
        delegate_crash_every=Seconds(1_000.0),
        min_live=2,                     # never draw below two live servers
        max_commissions=3,
    )
    speeds = {s.name: s.speed for s in paper_servers()}
    injector = FaultInjector(speeds, profile, seed=2)
    faults = injector.generate(Seconds(trace.duration))

    kinds = Counter(e.kind.value for e in faults)
    print(f"workload: {trace}")
    print(f"chaos   : {len(faults)} events over {trace.duration:.0f}s "
          f"({dict(sorted(kinds.items()))})\n")

    sim = ClusterSimulation(
        ClusterConfig(servers=paper_servers(), tuning_interval=120.0, seed=1),
        ANUPolicy(),
        trace,
        faults,
    )
    result = sim.run()

    served = sum(result.completed.values())
    print(f"requests completed: {served} / {len(trace)} "
          f"(re-dispatched after crashes: {result.retries})")
    print(f"file-set moves under churn: {result.moves_started}")
    print(f"membership events applied: {len(sim.director.applied)}")
    print(f"live servers at the end  : {sim.roster.live()}")
    assert served == len(trace), "chaos must never lose or duplicate work"
    print("\nsame seed, same chaos: rerunning this script reproduces the "
          "exact schedule and results.")


if __name__ == "__main__":
    main()
