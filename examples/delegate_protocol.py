"""The delegate protocol: election, tuning rounds, and fail-over.

Run:  python examples/delegate_protocol.py

The paper's §4 control plane as a message-level protocol: servers elect a
delegate (bully election over a lossy network), the delegate collects
latency reports every interval and broadcasts versioned configuration
updates, and a crashed delegate is replaced automatically — the new one is
stateless, exactly as the paper requires ("if the delegate fails, the next
elected delegate runs the same protocol with the same information").
"""

from repro.core.tuning import ServerReport
from repro.proto import ControlPlane, NetworkConfig, ProtocolConfig


def latency_model(name: str, now: float) -> ServerReport:
    """node00 is a slow machine; node01 degrades badly halfway through."""
    if name == "node00":
        return ServerReport(name, 0.400, 80)
    if name == "node01" and now > 60.0:
        return ServerReport(name, 0.600, 90)
    return ServerReport(name, 0.040, 120)


def main() -> None:
    cp = ControlPlane(
        5,
        seed=11,
        latency_model=latency_model,
        network_config=NetworkConfig(min_latency=0.002, max_latency=0.02,
                                     loss=0.05),
        protocol_config=ProtocolConfig(tuning_interval=10.0),
    )
    cp.start()

    cp.run_until(5.0)
    print(f"t=  5s  delegate elected: {cp.current_delegate()} "
          f"(bully election under 5% message loss; with loss the epoch race\n"
          f"        can favour any node — what matters is exactly one wins)")

    cp.run_until(60.0)
    shares = cp.nodes["node02"].shares
    print(f"t= 60s  shares after tuning rounds "
          f"(node00 is slow): "
          + ", ".join(f"{k}={v:.2f}" for k, v in sorted(shares.items())))

    delegate = cp.current_delegate()
    cp.crash(delegate)
    print(f"t= 60s  delegate {delegate} crashes...")
    cp.run_until(75.0)
    print(f"t= 75s  new delegate: {cp.current_delegate()} "
          f"(stateless: no tuning history carried over)")

    cp.run_until(150.0)
    shares = cp.nodes["node02"].shares
    print(f"t=150s  shares after node01 also degraded: "
          + ", ".join(f"{k}={v:.2f}" for k, v in sorted(shares.items())))
    print(f"\nconfig updates applied cluster-wide: {len(cp.config_log)}")
    print(f"all live nodes agree on the share map: {cp.shares_agree()}")
    print(f"network: {cp.network.sent} msgs sent, {cp.network.dropped} dropped")


if __name__ == "__main__":
    main()
