"""Capacity planning on a measured workload — the library as a tool.

Run:  python examples/capacity_planning.py

An operator's question: "this is last Tuesday's metadata workload; which
of the cluster configurations in our catalogue is the cheapest that keeps
steady-state p95 wait under 50 ms?"  Because ANU randomization places and
balances load with no configuration, the planner can just simulate each
candidate and read off the answer — no per-candidate placement tuning.
"""

from repro.experiments.planner import Candidate, LatencyObjective, plan_capacity
from repro.workloads import DFSTraceLikeConfig, generate_dfstrace_like

CATALOGUE = [
    # Homogeneous small boxes.
    Candidate("4x-small", {f"s{i}": 2.0 for i in range(4)}),
    # The paper's heterogeneous mix (reusing retired hardware).
    Candidate("mixed-5", {f"s{i}": float(2 * i + 1) for i in range(5)}),
    # Fewer, bigger boxes.
    Candidate("2x-large", {"s0": 9.0, "s1": 9.0}),
    # Overkill.
    Candidate("6x-large", {f"s{i}": 9.0 for i in range(6)}),
]


def main() -> None:
    workload = generate_dfstrace_like(
        DFSTraceLikeConfig(n_requests=60_000, duration=3_600.0, seed=12)
    )
    print(f"measured workload: {workload} "
          f"(heterogeneity {workload.heterogeneity_ratio():.0f}x)")

    objective = LatencyObjective(percentile=95.0, bound=0.050,
                                 steady_tail_fraction=0.5)
    print(f"objective: steady-state p{objective.percentile:.0f} wait "
          f"<= {objective.bound * 1000:.0f} ms\n")

    report = plan_capacity(CATALOGUE, workload, objective)
    print(report.table())
    rec = report.recommended
    if rec is not None:
        print(f"\n'{rec.candidate.name}' meets the objective at cost "
              f"{rec.candidate.effective_cost:.0f} "
              f"(measured p95 {rec.measured * 1000:.1f} ms, "
              f"{rec.moves} file-set moves during adaptation).")


if __name__ == "__main__":
    main()
