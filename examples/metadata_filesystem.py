"""A working shared-disk metadata file system on ANU routing.

Run:  python examples/metadata_filesystem.py

Beyond replaying abstract request traces, this repository contains the
full Storage Tank-style substrate of the paper's §2: a global namespace
partitioned into file sets, real metadata operations, a lock manager, and
namespace images on a shared disk.  This example drives it end to end:

1. clients create directories, files, and locks through a POSIX-ish API;
2. every operation is routed to the owning server by hashing alone;
3. a delegate tuning round moves file-set images over the shared disk;
4. a server crash loses only its unflushed updates — survivors load the
   last flushed images, and the namespace stays consistent.
"""

from repro.core.tuning import ServerReport
from repro.fs import FileSystemClient, MetadataCluster

ROOTS = {
    "homes": "/home",
    "scratch": "/scratch",
    "archive": "/archive",
    "builds": "/builds",
    "media": "/media",
    "logs": "/var/log",
}


def show_ownership(cluster: MetadataCluster, title: str) -> None:
    print(f"\n{title}")
    by_server: dict[str, list[str]] = {}
    for fileset, server in sorted(cluster.ownership().items()):
        by_server.setdefault(server, []).append(fileset)
    for server in sorted(cluster.services):
        print(f"  {server}: {by_server.get(server, [])}")


def main() -> None:
    cluster = MetadataCluster(["mds1", "mds2", "mds3"], ROOTS)
    show_ownership(cluster, "Initial ownership (pure hashing, no config)")

    alice = FileSystemClient(cluster, "alice")
    bob = FileSystemClient(cluster, "bob")

    alice.mkdir("/home/alice")
    alice.create("/home/alice/notes.txt")
    alice.setattr("/home/alice/notes.txt", size=4096)
    bob.mkdir("/scratch/run42")
    bob.create("/scratch/run42/output.dat")

    print("\nalice's home:", alice.readdir("/home/alice"))
    print("locking output.dat:",
          "granted" if bob.lock("/scratch/run42/output.dat", exclusive=True)
          else "queued")
    print("alice's shared lock on the same file:",
          "granted" if alice.lock("/scratch/run42/output.dat") else "queued",
          "(exclusive held by bob)")

    # A tuning round: pretend the busiest server reported high latency.
    busiest = max(
        cluster.services,
        key=lambda s: len(cluster.services[s].owned_filesets()),
    )
    reports = [
        ServerReport(s, 0.400 if s == busiest else 0.040, 100)
        for s in sorted(cluster.services)
    ]
    moved = cluster.retune(reports)
    cluster.check_consistency()
    show_ownership(cluster, f"After one delegate round ({moved} file sets "
                            f"moved over the shared disk)")
    print("alice's file survived the move:",
          alice.exists("/home/alice/notes.txt"))

    # Crash a server: unflushed updates are lost; flushed state survives.
    cluster.checkpoint()                      # flush all images
    alice.create("/home/alice/unflushed.tmp")  # written after the checkpoint
    victim = cluster.owner_of("homes")
    cluster.fail_server(victim)
    cluster.check_consistency()
    show_ownership(cluster, f"After crashing {victim}")
    print("checkpointed file survives:", alice.exists("/home/alice/notes.txt"))
    print("unflushed file was lost:   ",
          not alice.exists("/home/alice/unflushed.tmp"))


if __name__ == "__main__":
    main()
