"""Heterogeneous cluster comparison — the paper's headline experiment.

Run:  python examples/heterogeneous_cluster.py

Simulates the paper's five-server cluster (speeds 1, 3, 5, 7, 9) serving a
skewed synthetic metadata workload under four placement policies and prints
per-server latency sparklines plus the comparison table.  This is a
reduced-scale version of Figure 8; run ``repro-experiments fig8`` (or the
benchmarks) for the full published scale.
"""

from repro import ClusterConfig, ClusterSimulation, SyntheticConfig, generate_synthetic, paper_servers
from repro.experiments import comparison_table, series_block
from repro.experiments.runner import make_policy, run_policy

POLICIES = ("simple-random", "round-robin", "prescient", "anu")


def main() -> None:
    workload = SyntheticConfig(
        n_filesets=120, n_requests=20_000, duration=2_000.0, seed=1
    )
    trace = generate_synthetic(workload)
    cluster = ClusterConfig(
        servers=paper_servers(),
        tuning_interval=120.0,
        sample_window=60.0,
        oracle_horizon=workload.duration,  # stationary workload
        seed=0,
    )
    print(f"workload: {trace}")
    print(f"cluster : speeds {sorted(cluster.speeds.values())}, "
          f"2-minute tuning interval\n")

    results = {}
    for name in POLICIES:
        results[name] = run_policy(name, trace, cluster)
        print(series_block(f"[{name}]", results[name].series))
        print()

    print(comparison_table(results))
    print(
        "\nReading the table: the static policies leave the slow server\n"
        "overloaded (high worst-server latency); prescient needs perfect\n"
        "knowledge to balance; ANU gets comparable balance from latency\n"
        "observations alone, moving only a few file sets per adjustment."
    )


if __name__ == "__main__":
    main()
