"""A parameter sweep whose output does not depend on how it ran.

Run:  python examples/parallel_sweep.py

The paper's evaluation is a grid: every placement policy crossed with
many seeds, each cell one full simulation.  :mod:`repro.sweep` turns
that grid into a *plan* — cells with content-derived ids, canonically
ordered — and runs it under a pluggable executor (in-process, a spawn
``multiprocessing.Pool``, or ``concurrent.futures``).  Because workers
share no process state, exchange only plain dicts, and the merge is
keyed by cell id rather than completion order (properties the
concurrency sanitizer, lint rules RPL107-110, proves statically), the
merged JSONL is a pure function of the plan: byte-identical at any
worker count, under any executor, across any interrupt/resume split.

This script runs the same small grid three ways — serially, on a
2-worker process pool, and split across two resumed invocations — and
shows all three produce the same merged digest.
"""

import json
import tempfile
from pathlib import Path

from repro.sweep import GridSpec, run_sweep

# Two policies x six seeds = 12 cells, each a quick-sized simulation.
SPEC = GridSpec(
    axes={"policy": ["anu", "random"]},
    seeds=range(6),
    base={
        "n_filesets": 12,
        "n_requests": 60,
        "duration": 120.0,
        "tuning_interval": 30.0,
    },
)


def main() -> None:
    plan = SPEC.build_plan()
    print(f"plan: {len(plan)} cells, digest {plan.digest()[:16]}...")
    print(f"first cell id {plan.cells[0].cell_id} "
          "(derived from its params+seed, not its position)\n")

    with tempfile.TemporaryDirectory() as tmp:
        # 1. The reference run: one process, cells in plan order.
        serial = run_sweep(plan, Path(tmp) / "serial", executor="serial")
        print(f"serial:          ran {serial.ran:2d}, "
              f"merged {serial.merged_digest[:16]}...")

        # 2. A spawn-based process pool.  Workers race; rows land in
        # shards in completion order; the merge re-keys by cell id.
        pooled = run_sweep(
            plan, Path(tmp) / "process", executor="process", jobs=2
        )
        print(f"process pool x2: ran {pooled.ran:2d}, "
              f"merged {pooled.merged_digest[:16]}...")

        # 3. Interrupt and resume: compute 5 cells serially, then let a
        # process pool finish the rest into the same output directory.
        outdir = Path(tmp) / "resumed"
        partial = run_sweep(plan, outdir, executor="serial", max_cells=5)
        print(f"partial run:     ran {partial.ran:2d}, "
              f"complete={partial.complete}")
        resumed = run_sweep(plan, outdir, executor="process", jobs=2)
        print(f"resumed run:     ran {resumed.ran:2d}, "
              f"resumed {resumed.resumed}, "
              f"merged {resumed.merged_digest[:16]}...\n")

        digests = {serial.merged_digest, pooled.merged_digest,
                   resumed.merged_digest}
        assert len(digests) == 1, f"executors diverged: {digests}"
        print("all three merged.jsonl files are byte-identical")

        # The rows themselves: one plain-JSON line per cell, carrying
        # the scenario summary plus the cell's telemetry digest chain
        # head (the proof the simulation inside was deterministic too).
        lines = (outdir / "merged.jsonl").read_text().splitlines()
        by_policy: dict[str, list[float]] = {}
        for line in lines:
            row = json.loads(line)
            by_policy.setdefault(row["params"]["policy"], []).append(
                row["summary"]["mean_latency"]
            )
        print(f"\nper-policy mean latency over {len(SPEC.seeds)} seeds:")
        for policy, latencies in sorted(by_policy.items()):
            mean = sum(latencies) / len(latencies)
            print(f"  {policy:12s} {mean:8.3f}")


if __name__ == "__main__":
    main()
