"""Failure and recovery — self-organizing load placement.

Run:  python examples/failure_recovery.py

Crashes the most powerful server mid-run and recovers it ten minutes later.
ANU randomization re-homes the failed server's file sets by re-hashing
(survivors' regions grow to keep the half-occupancy invariant), then gives
the recovered server a free partition and scales everyone back — all
without operator input, moving the minimum amount of workload.  A delegate
crash is thrown in to show the tuning protocol is stateless.
"""

from repro import ClusterConfig, ClusterSimulation, FaultSchedule, paper_servers
from repro.experiments import series_block
from repro.workloads import DFSTraceLikeConfig, generate_dfstrace_like
from repro.placement import ANUPolicy


def main() -> None:
    trace = generate_dfstrace_like(
        DFSTraceLikeConfig(n_requests=30_000, duration=2_400.0, epochs=16, seed=5)
    )
    cluster = ClusterConfig(
        servers=paper_servers(), tuning_interval=120.0, sample_window=60.0, seed=2
    )
    faults = (
        FaultSchedule()
        .fail(600.0, "server4")        # the fastest server crashes at 10 min
        .delegate_crash(720.0)          # the tuning delegate fails over too
        .recover(1_200.0, "server4")    # back at 20 min
    )
    print(f"workload: {trace}")
    print("faults  : fail server4 @600s, delegate crash @720s, recover @1200s\n")

    sim = ClusterSimulation(cluster, ANUPolicy(), trace, faults)
    result = sim.run()

    print(series_block("[anu under failure]", result.series))
    print()
    counts = result.series.counts["server4"]
    window = result.series.window
    down = [i for i, c in enumerate(counts) if c == 0 and 600 <= i * window < 1200]
    print(f"server4 served nothing in {len(down)} of the 10 windows while down,")
    print(f"then resumed serving after recovery "
          f"(last-5-window count: {counts[-5:].sum():.0f} requests).")
    print(f"\nrequests completed: {result.total_requests} / {len(trace)}")
    print(f"requests re-dispatched after the crash: {result.retries}")
    print(f"file-set moves: {result.moves_started} "
          f"(placement preservation {result.ledger.preservation:.1%})")


if __name__ == "__main__":
    main()
