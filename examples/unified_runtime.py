"""One scenario, three simulators, one telemetry stream.

Run:  python examples/unified_runtime.py

The paper's evaluation moves between modeling fidelities: a queueing
simulation for the headline figures, a timed semantic file system for the
"does it really work" runs, and a message-level protocol for §4's control
plane.  Since the harness refactor all three are thin adapters over
:mod:`repro.runtime`, so a single :class:`repro.runtime.Scenario` — one
fleet, one workload, one policy, one seed — can drive each stack and the
results come back on the same :class:`repro.SimResult` schema.

Every harness also emits the same structured telemetry stream (arrivals,
dispatches, completions, tuning decisions, file-set moves, elections),
captured here with in-memory sinks and round-tripped through JSONL.
"""

import io

from repro.cluster import ServerSpec
from repro.fs import FsWorkloadConfig, MetadataCluster, generate_operations
from repro.runtime import (
    JsonlSink,
    MemorySink,
    Scenario,
    TeeSink,
    read_jsonl,
)

ROOTS = {f"vol{i:02d}": f"/vol{i:02d}" for i in range(12)}
SERVERS = [ServerSpec(f"server{i}", float(2 * i + 1)) for i in range(5)]
WORKLOAD = FsWorkloadConfig(
    n_operations=6_000, duration=1_200.0, popularity_skew=1.3, seed=8
)


def main() -> None:
    # One workload description: a semantic operation stream.  The timed
    # file system consumes it directly; the queueing and protocol stacks
    # see it bridged to an abstract request trace by the scenario.
    ops = generate_operations(MetadataCluster(["gen"], ROOTS), WORKLOAD)
    scenario = Scenario(
        servers=SERVERS,
        operations=ops,
        fileset_roots=ROOTS,
        tuning_interval=120.0,
        seed=4,
        mean_op_cost=1.0,
    )
    print(f"scenario: {len(SERVERS)} servers (speeds 1..9), "
          f"{len(ops)} operations over {WORKLOAD.duration:.0f}s, "
          f"{len(ROOTS)} file sets\n")

    # The same scenario on each stack, each with its own telemetry sink.
    sinks = {name: MemorySink() for name in ("cluster", "full-system", "protocol")}
    results = {
        "cluster": scenario.run_cluster(telemetry=sinks["cluster"]),
        "full-system": scenario.run_full_system(telemetry=sinks["full-system"]),
        "protocol": scenario.run_protocol(telemetry=sinks["protocol"]).run,
    }

    print(f"{'harness':12s} {'mean(ms)':>9s} {'requests':>9s} "
          f"{'rounds':>7s} {'moves':>6s}")
    for name, result in results.items():
        s = result.summary()
        print(f"{name:12s} {s['mean_latency'] * 1000:9.1f} "
              f"{s['total_requests']:9.0f} {s['tuning_rounds']:7.0f} "
              f"{s['moves']:6.0f}")

    print("\ntelemetry record counts per harness:")
    for name, sink in sinks.items():
        counts = ", ".join(f"{k}={v}" for k, v in sorted(sink.counts().items()))
        print(f"  {name:12s} {counts}")

    # The protocol stack additionally reports control-plane events.
    elections = sinks["protocol"].of_kind("election")
    print("\ndelegate elections (protocol stack):")
    for record in elections:
        print(f"  t={record.time:7.1f}s  {record.delegate} "
              f"(epoch {record.epoch})")

    # Any sink can tee into JSONL; the stream round-trips losslessly.
    buffer = io.StringIO()
    memory = MemorySink()
    scenario.run_cluster(telemetry=TeeSink(memory, JsonlSink(buffer)))
    buffer.seek(0)
    replayed = read_jsonl(buffer)
    assert replayed == memory.records
    first = replayed[0].to_dict()
    print(f"\nJSONL round trip: {len(replayed)} records identical; "
          f"first record: {first}")


if __name__ == "__main__":
    main()
