"""Online hardware upgrade — future adaptability without configuration.

Run:  python examples/online_upgrade.py

The paper's §1 motivates "upgrading hardware while the system is on-line
and taking full advantage of faster hardware" with zero administrator
knowledge.  This example decommissions the slowest server mid-run and
commissions a replacement that is 9x faster.  ANU never learns the speeds;
it simply observes latency and grows the newcomer's mapped region until the
cluster re-balances.
"""

from repro import ClusterConfig, ClusterSimulation, FaultSchedule, ServerSpec
from repro.experiments import series_block
from repro.placement import ANUPolicy
from repro.workloads import SyntheticConfig, generate_synthetic


def main() -> None:
    servers = tuple(
        ServerSpec(name=f"server{i}", speed=float(s))
        for i, s in enumerate([1, 3, 5, 7, 9])
    )
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=120, n_requests=30_000, duration=3_000.0, seed=4)
    )
    faults = (
        FaultSchedule()
        .decommission(1_000.0, "server0")          # retire the slow box
        .commission(1_000.0, "server5", speed=9.0)  # rack the new one
    )
    cluster = ClusterConfig(servers=servers, tuning_interval=120.0,
                            sample_window=60.0, seed=3)
    print(f"workload: {trace}")
    print("upgrade : at t=1000s replace server0 (speed 1) with server5 (speed 9)\n")

    result = ClusterSimulation(cluster, ANUPolicy(), trace, faults).run()

    print(series_block("[anu across the upgrade]", result.series))
    print()
    new_counts = result.series.counts["server5"]
    before = new_counts[: int(1_000 // result.series.window)].sum()
    after = new_counts[-5:].sum()
    print(f"server5 requests before commissioning: {before:.0f} (sanity: 0)")
    print(f"server5 requests in the last 5 minutes: {after:.0f} — the newcomer")
    print("was enlisted purely from observed latency; no speed was configured.")
    print(f"\nrequests completed: {result.total_requests} / {len(trace)}")
    print(f"file-set moves: {result.moves_started} "
          f"(placement preservation {result.ledger.preservation:.1%})")


if __name__ == "__main__":
    main()
