"""Setup shim.

All project metadata lives in pyproject.toml.  This file exists only so
``pip install -e .`` works on environments whose setuptools/pip lack wheel
support for PEP 660 editable installs (e.g. offline machines without the
``wheel`` package).
"""

from setuptools import setup

setup()
