"""Ablation: load-balance bounds — ANU vs simple randomization.

§4: ANU keeps each server's load within a small constant of the mean with
high probability, "compar[ing] favorably to simple randomization in which
load is bounded by [a log n / log log n factor]".  This bench Monte-Carlos
simple randomization's normalized max load for growing n and contrasts it
with ANU's post-tuning normalized max, which stays flat.
"""

from conftest import quick_mode, run_once

from repro.theory import (
    anu_normalized_max_after_tuning,
    simulate_simple_randomization,
)

SIZES = ((5, 500), (20, 2000), (80, 8000))


def sweep():
    trials = 5 if quick_mode() else 20
    rows = []
    for n, m in SIZES:
        simple = simulate_simple_randomization(n, m, trials=trials)
        anu = anu_normalized_max_after_tuning(n, m, rounds=25)
        rows.append((n, m, simple.mean_normalized_max,
                     simple.predicted_normalized_max, anu))
    return rows


def test_balls_into_bins_bounds(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: normalized max load (max/mean), m/n = 100 file sets/server")
    print(f"{'n':>4s} {'m':>6s} {'simple(sim)':>12s} {'simple(theory)':>15s} {'ANU(tuned)':>11s}")
    for n, m, sim, theory, anu in rows:
        print(f"{n:4d} {m:6d} {sim:12.3f} {theory:15.3f} {anu:11.3f}")

    simple_by_n = {n: sim for n, _, sim, _, _ in rows}
    anu_by_n = {n: anu for n, _, _, _, anu in rows}
    # Simple randomization's imbalance grows with n...
    assert simple_by_n[80] > simple_by_n[5]
    # ...while tuned ANU stays within a small constant, independent of n.
    assert all(v < 1.35 for v in anu_by_n.values())
    # And ANU beats simple randomization at every size.
    for n in anu_by_n:
        assert anu_by_n[n] < simple_by_n[n]
