"""Protocol ablation: delegate fail-over time and loss tolerance.

The paper's availability argument (§4) rests on the delegate protocol
being cheap to fail over (stateless) and tolerant of an imperfect network.
This bench measures (a) how long a cluster is without an agreed delegate
after a crash and (b) how message loss degrades tuning-round completion.
"""

from conftest import run_once

from repro.core.tuning import ServerReport
from repro.proto import ControlPlane, NetworkConfig, ProtocolConfig

FAST = ProtocolConfig(
    heartbeat_interval=0.5,
    heartbeat_timeout=1.6,
    election_timeout=0.3,
    report_timeout=0.3,
    tuning_interval=2.0,
)


def skewed(name: str, now: float) -> ServerReport:
    return ServerReport(name, 0.5 if name == "node00" else 0.05, 100)


def failover_times(trials: int = 10) -> list[float]:
    times = []
    for seed in range(trials):
        cp = ControlPlane(5, seed=seed, protocol_config=FAST,
                          latency_model=skewed)
        cp.start()
        cp.run_until(5.0)
        victim = cp.current_delegate()
        assert victim is not None
        cp.crash(victim)
        crash_time = cp.engine.now
        # Step until a majority agrees on a new delegate.
        while cp.engine.now < crash_time + 60.0:
            cp.run_until(cp.engine.now + 0.25)
            new = cp.current_delegate()
            if new is not None and new != victim:
                break
        times.append(cp.engine.now - crash_time)
    return times


def loss_sweep() -> list[tuple[float, int, bool]]:
    rows = []
    for loss in (0.0, 0.1, 0.3):
        cp = ControlPlane(
            5, seed=3, protocol_config=FAST, latency_model=skewed,
            network_config=NetworkConfig(min_latency=0.001,
                                         max_latency=0.01, loss=loss),
        )
        cp.start()
        cp.run_until(60.0)
        delegate = cp.current_delegate()
        rounds = max(n.rounds_run for n in cp.nodes.values())
        tuned = all(
            n.shares.get("node00", 1.0) < n.shares.get("node04", 1.0)
            for n in cp.nodes.values()
            if n.alive and n.shares
        )
        rows.append((loss, rounds, tuned and delegate is not None))
    return rows


def test_failover_and_loss(benchmark):
    times, rows = run_once(benchmark, lambda: (failover_times(), loss_sweep()))

    print()
    print("Protocol: delegate fail-over time (crash -> majority agreement)")
    print(f"  trials={len(times)} mean={sum(times)/len(times):.2f}s "
          f"max={max(times):.2f}s (heartbeat timeout {FAST.heartbeat_timeout}s)")
    print("Protocol: tuning under message loss (60 s run)")
    print(f"{'loss':>6s} {'rounds':>7s} {'slow node tuned down':>22s}")
    for loss, rounds, ok in rows:
        print(f"{loss:6.2f} {rounds:7d} {str(ok):>22s}")

    # Fail-over completes within a few heartbeat timeouts.
    assert max(times) < 5 * FAST.heartbeat_timeout
    # Even at 30% loss, rounds complete and the slow node is shed.
    assert all(ok for _, _, ok in rows)
    assert rows[-1][1] >= 5
