"""Figure 3: dealing with server heterogeneity.

Two fast (speed 2) and two slow (speed 1) servers, uniform file sets.  The
paper's figure shows the initial equal-region configuration and the
reorganized configuration in which the fast servers' mapped regions grew.
The bench regenerates both states and asserts the reorganized shape.
"""

from conftest import run_once

from repro.experiments.figures import figure3_demo
from repro.experiments.report import interval_bar


def test_fig3_server_heterogeneity(benchmark):
    demo = run_once(benchmark, figure3_demo)

    print()
    print("Figure 3: server heterogeneity (speeds 2,2,1,1; uniform file sets)")
    print(f"  initial shares: { {k: round(v, 3) for k, v in demo.initial_shares.items()} }")
    print(f"  final shares:   { {k: round(v, 3) for k, v in demo.final_shares.items()} }")
    print(f"  initial counts: {demo.initial_counts}")
    print(f"  final counts:   {demo.final_counts}")
    print(f"  latency spread: {demo.initial_latency_spread:.2f} -> "
          f"{demo.final_latency_spread:.2f} in {demo.iterations} iteration(s)")
    print(interval_bar(demo.placement.interval))

    # Paper shape: fast servers end with roughly twice the slow servers'
    # mapped regions and file sets; the latency proxy is near-balanced.
    fast_share = demo.final_shares["server1"] + demo.final_shares["server2"]
    slow_share = demo.final_shares["server3"] + demo.final_shares["server4"]
    assert fast_share > 1.3 * slow_share
    assert demo.final_latency_spread < 1.3
    demo.placement.check_invariants()
