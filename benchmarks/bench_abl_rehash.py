"""Ablation: re-hashing rounds k and the direct-to-server fallback.

§4: file sets unassigned after k rounds are hashed directly to a server;
this "bounds the number of rounds and does not introduce significant skew
... because it occurs with low probability, 2^-k.  On average, the system
requires two probes to assign a file set."  This bench measures mean probe
count and fallback fraction across k.
"""

from conftest import run_once

from repro.core import ANUPlacement, HashFamily

NAMES = [f"fs{i:05d}" for i in range(20_000)]
ROUNDS = (2, 4, 8, 12)


def sweep():
    rows = []
    for k in ROUNDS:
        placement = ANUPlacement(
            [f"s{i}" for i in range(5)], hash_family=HashFamily(max_rounds=k)
        )
        probes = []
        fallbacks = 0
        for name in NAMES:
            _, used = placement.locate_with_rounds(name)
            probes.append(min(used, k))
            if used == k + 1:
                fallbacks += 1
        rows.append((k, sum(probes) / len(probes), fallbacks / len(NAMES)))
    return rows


def test_rehash_rounds(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: probe rounds k (5 servers, half occupancy)")
    print(f"{'k':>4s} {'mean probes':>12s} {'fallback frac':>14s} {'2^-k':>9s}")
    for k, mean_probes, frac in rows:
        print(f"{k:4d} {mean_probes:12.3f} {frac:14.5f} {2.0**-k:9.5f}")

    for k, mean_probes, frac in rows:
        # Fallback probability tracks 2^-k.
        assert abs(frac - 2.0**-k) < max(3 * 2.0**-k, 0.01)
        # Expected probes ~ 2 (geometric, p = 1/2), capped by k.
        assert mean_probes < 2.3
