"""Figure 8: server latency for the synthetic workload, four policies.

500 file sets, 100,000 requests over 10,000 s, stationary Poisson per file
set with power-law weights; five servers (speeds 1,3,5,7,9).  Expected
shape (paper §7): the static policies cannot deal with heterogeneity (the
weak server is overwhelmed); prescient starts balanced and retains its
configuration (stationary workload); ANU discovers the heterogeneity and
converges to a comparable balance.
"""

from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment


def test_fig8_synthetic_four_policies(benchmark):
    config, results = run_once(benchmark, run_figure, "fig8", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    static_worst = min(
        max(res.series.mean_over_run(s) for s in res.series.servers)
        for name, res in results.items()
        if name in ("simple-random", "round-robin")
    )
    anu, presc = results["anu"], results["prescient"]
    for adaptive in (anu, presc):
        worst = max(
            adaptive.series.mean_over_run(s) for s in adaptive.series.servers
        )
        assert worst < static_worst

    # Mean latencies: adaptive policies are an order of magnitude below the
    # static ones.
    static_mean = min(
        results["simple-random"].mean_latency, results["round-robin"].mean_latency
    )
    assert anu.mean_latency < static_mean / 3
    assert presc.mean_latency < static_mean / 3

    # Stationary workload: prescient's configuration is near-stable (it
    # does not thrash all 500 file sets every round).
    rounds = max(presc.tuning_rounds, 1)
    assert presc.ledger.total_moves / rounds < 0.25 * len(
        presc.final_assignment
    )
