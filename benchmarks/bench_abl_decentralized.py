"""Ablation: centralized delegate vs pair-wise decentralized tuning (§5).

The paper's future work replaces the delegate's global rescaling with
pair-wise peer exchanges.  This bench runs both on the synthetic workload:
the decentralized variant must reach the same latency regime (it converges
more slowly — fewer servers interact per round) while exchanging only
pair-local information.
"""

from conftest import quick_mode, run_once

from repro.cluster.cluster import ClusterSimulation
from repro.experiments.config import figure8
from repro.experiments.runner import generate_trace, make_policy


def sweep():
    config = figure8(quick=quick_mode())
    trace = generate_trace(config.workload_config())
    rows = []
    for name in ("anu", "anu-decentralized", "round-robin"):
        res = ClusterSimulation(config.cluster, make_policy(name), trace).run()
        worst = max(res.series.mean_over_run(s) for s in res.series.servers)
        rows.append((name, res.mean_latency, worst, res.moves_started))
    return rows


def test_decentralized_vs_central(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: central delegate vs pair-wise tuning (synthetic workload)")
    print(f"{'policy':>20s} {'mean(ms)':>10s} {'worst(ms)':>10s} {'moves':>7s}")
    for name, mean, worst, moves in rows:
        print(f"{name:>20s} {mean * 1000:10.2f} {worst * 1000:10.2f} {moves:7d}")

    by_name = {name: (mean, worst) for name, mean, worst, _ in rows}
    static_mean = by_name["round-robin"][0]
    # Both ANU variants handle the heterogeneity the static policy cannot.
    assert by_name["anu"][0] < static_mean / 3
    assert by_name["anu-decentralized"][0] < static_mean / 2
