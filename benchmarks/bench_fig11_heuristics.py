"""Figure 11: the three over-tuning heuristics, decomposed.

Each panel of the paper's figure runs exactly one heuristic:

- thresholding alone stabilizes mid-range servers but the weakest server
  still fluctuates above and below the threshold;
- top-off alone is "the single most effective": it tunes the weakest server
  down to no workload and only trims latency peaks;
- divergent alone reaches balance, but more slowly than all three combined.
"""

from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment


def test_fig11_heuristics_decomposed(benchmark):
    config, results = run_once(benchmark, run_figure, "fig11", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    threshold = results["anu-threshold-only"]
    top_off = results["anu-top-off-only"]
    divergent = results["anu-divergent-only"]

    # Every single-heuristic variant still completes the workload and
    # reaches a usable balance (means in the tens of ms, not static-policy
    # hundreds).
    for res in (threshold, top_off, divergent):
        assert res.total_requests == threshold.total_requests
        assert res.mean_latency < 0.2

    # Top-off parks the weakest server: its steady-state share of requests
    # is the smallest across the three variants.
    def weak_tail_share(res):
        tail = {s: float(res.series.counts[s][-10:].sum()) for s in res.series.servers}
        total = sum(tail.values()) or 1.0
        return tail["server0"] / total

    shares = {
        "threshold": weak_tail_share(threshold),
        "top-off": weak_tail_share(top_off),
        "divergent": weak_tail_share(divergent),
    }
    print(f"\nweakest-server steady-state request share: {shares}")
    assert shares["top-off"] <= min(shares["threshold"], shares["divergent"]) + 0.02
