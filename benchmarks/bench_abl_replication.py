"""Ablation: multi-seed replication of the headline comparison.

One simulation draw can flatter either side (e.g. the hottest file set
hashing onto a fast server).  This bench reruns the synthetic comparison
across seeds and asserts the paper's ordering — adaptive beats static on
steady-state worst-server latency — in *every* replicate, with confidence
intervals printed for the record.
"""

from dataclasses import replace

from conftest import quick_mode, run_once

from repro.experiments.config import figure8
from repro.experiments.replication import replicate, replication_table


def config_factory(seed: int):
    cfg = figure8(quick=True, seed=seed)
    if quick_mode():
        # Keep >= 150 file sets even in quick mode: with too few,
        # indivisibility (the paper's §6 point) dominates single seeds and
        # the steady-state metric measures granularity, not policy.
        workload = replace(cfg.synthetic, n_filesets=150, n_requests=20_000,
                           duration=3_000.0)
        cfg = replace(cfg, synthetic=workload)
    return replace(cfg, policies=("simple-random", "round-robin", "anu"))


def test_replicated_ordering(benchmark):
    seeds = [0, 1, 2] if quick_mode() else [0, 1, 2, 3, 4]
    result = run_once(benchmark, replicate, config_factory, seeds)

    print()
    print("Replication: synthetic comparison across seeds")
    print(replication_table(result, "steady_worst"))
    print()
    print(replication_table(result, "mean_latency"))

    # The ordering holds in every single replicate, not just on average.
    assert result.ordering_holds("anu", "round-robin", "steady_worst")
    assert result.ordering_holds("anu", "simple-random", "steady_worst")
    # And the CI-separated means tell the same story.
    anu = result.metric("anu", "steady_worst")
    rr = result.metric("round-robin", "steady_worst")
    assert anu.mean < rr.mean
