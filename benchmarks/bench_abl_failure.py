"""Ablation: failure and recovery under load (the §4 availability story).

No figure in the paper times a failure, but §4 specifies the machinery:
on failure only the dead server's file sets re-hash to survivors; on
recovery the server takes a free partition and others scale back — both
with minimal movement, preserving caches.  This bench crashes the fastest
server mid-run and recovers it later, for ANU and the baselines, and
measures:

- requests lost: none (orphans re-dispatch and complete);
- movement at each event vs the orphaned fraction;
- how quickly the latency disturbance decays;
- whether the recovered server is re-enlisted.
"""

import numpy as np
from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, FaultSchedule, paper_servers
from repro.experiments.report import comparison_table
from repro.experiments.runner import run_policy
from repro.workloads import SyntheticConfig, generate_synthetic

POLICIES = ("anu", "consistent-hash", "round-robin")


def run_all():
    n_requests = 20_000 if quick_mode() else 50_000
    duration = 2_000.0 if quick_mode() else 5_000.0
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=150, n_requests=n_requests,
                        duration=duration, seed=6)
    )
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=1)
    fail_t, recover_t = duration / 3, 2 * duration / 3
    results = {}
    for name in POLICIES:
        faults = (
            FaultSchedule().fail(fail_t, "server4").recover(recover_t, "server4")
        )
        results[name] = run_policy(name, trace, cluster, faults)
    return (fail_t, recover_t, duration), results


def test_failure_recovery_under_load(benchmark):
    (fail_t, recover_t, duration), results = run_once(benchmark, run_all)
    print()
    print(f"Failure study: server4 (fastest) fails at {fail_t:.0f}s, "
          f"recovers at {recover_t:.0f}s")
    print(comparison_table(results))
    for name, res in results.items():
        print(f"  {name}: moves per event {res.ledger.moves_per_reconfig}, "
              f"retries {res.retries}")

    for name, res in results.items():
        # Nothing is lost: every request eventually completes.
        assert res.total_requests == results["anu"].total_requests, name
        # The dead server serves nothing while down.
        window = res.series.window
        down = res.series.counts["server4"][
            int(fail_t // window) + 1 : int(recover_t // window)
        ]
        assert down.sum() == 0, name
        # ...and is re-enlisted after recovery.
        after = res.series.counts["server4"][int(recover_t // window) + 1 :]
        assert after.sum() > 0, name

    # Movement: hashing-based policies move ~the orphaned share per event
    # (large here — the fastest server holds a big tuned share when it
    # dies); round-robin re-deals most of the table regardless.
    n_filesets = 150
    anu_max_event = max(results["anu"].ledger.moves_per_reconfig)
    rr_max_event = max(results["round-robin"].ledger.moves_per_reconfig)
    assert anu_max_event < rr_max_event
    assert anu_max_event < 0.6 * n_filesets
    assert rr_max_event > 0.55 * n_filesets

    # The disturbance decays: ANU's worst window right after the failure is
    # far above its steady tail.
    anu = results["anu"]
    window = anu.series.window
    fail_idx = int(fail_t // window)
    spike = max(
        float(np.max(anu.series.mean_latency[s][fail_idx : fail_idx + 3]))
        for s in anu.series.servers
    )
    steady = max(anu.series.tail_window_mean(s, 5) for s in anu.series.servers)
    assert steady < max(spike, 1e-6)