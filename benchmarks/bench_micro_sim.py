"""Microbenchmarks of the discrete-event engine itself.

The figure runs replay ~10^5–10^6 events; these benches record the
engine's raw throughput so regressions in the substrate are visible
independently of the algorithms running on it.
"""

from repro.sim import Engine, Facility


def test_event_scheduling_throughput(benchmark):
    """Schedule+fire cost of a bare event."""

    def run_chunk():
        engine = Engine()
        for i in range(1000):
            engine.schedule(float(i), lambda: None)
        engine.run()

    benchmark(run_chunk)


def test_chained_event_throughput(benchmark):
    """Self-rescheduling event chains (the arrival-pump pattern)."""

    def run_chain():
        engine = Engine()
        remaining = [1000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()

    benchmark(run_chain)


def test_cancellation_heavy_timeout_pattern(benchmark):
    """Schedule-then-cancel churn (the timeout-guard pattern).

    Every request posts a far-future timeout and immediately cancels it
    on completion; the calendar must not accumulate the corpses.
    """

    def run_timeouts():
        engine = Engine()

        def pump(n):
            guard = engine.schedule(10_000.0, lambda: None)
            guard.cancel()
            if n > 0:
                engine.schedule(1.0, pump, n - 1)

        engine.schedule(0.0, pump, 2000)
        engine.run()
        return engine.pending

    benchmark(run_timeouts)


def test_latency_tail_summary_cost(benchmark):
    """p50/p95/p99/max over a 50k-sample pool (the post-run report path)."""
    from repro.metrics.latency import LatencyCollector

    collector = LatencyCollector()
    for i in range(50_000):
        # Deterministic pseudo-latencies: low-discrepancy in (0, 1).
        lat = ((i * 2654435761) % 1_000_003) / 1_000_003.0
        collector.record(f"s{i % 8}", float(i) * 0.01, lat)

    def summarize():
        pooled = collector.tail_summary()
        per_server = collector.tail_summary("s3")
        return pooled, per_server

    benchmark(summarize)


def test_latency_window_report_cost(benchmark):
    """Per-server windowed interval reports (the delegate's read path)."""
    from repro.metrics.latency import LatencyCollector

    collector = LatencyCollector()
    servers = [f"s{i}" for i in range(8)]
    for i in range(50_000):
        lat = ((i * 2654435761) % 1_000_003) / 1_000_003.0
        collector.record(servers[i % 8], float(i) * 0.01, lat)
    state = {"window": 0}

    def report_window():
        state["window"] = (state["window"] + 1) % 40
        start = 10.0 * state["window"]
        return collector.reports(servers, start, start + 10.0)

    benchmark(report_window)


def test_facility_queueing_throughput(benchmark):
    """Request->serve->complete cycles through a FIFO facility."""

    def run_queue():
        engine = Engine()
        fac = Facility(engine, "f")
        for i in range(1000):
            engine.schedule_at(float(i), fac.request, 0.5, lambda: None)
        engine.run()

    benchmark(run_queue)


def test_cluster_simulation_events_per_second(benchmark):
    """End-to-end events/s of a small cluster run (reported as extra)."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement import RoundRobinPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=5000, duration=500.0)
    )
    cfg = ClusterConfig(servers=paper_servers(), seed=0)

    def run_sim():
        sim = ClusterSimulation(cfg, RoundRobinPolicy(), trace)
        sim.run()
        return sim.engine.events_fired

    events = benchmark(run_sim)
    benchmark.extra_info["events_fired"] = events
