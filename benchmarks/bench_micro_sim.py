"""Microbenchmarks of the discrete-event engine itself.

The figure runs replay ~10^5–10^6 events; these benches record the
engine's raw throughput so regressions in the substrate are visible
independently of the algorithms running on it.
"""

from repro.sim import Engine, Facility


def test_event_scheduling_throughput(benchmark):
    """Schedule+fire cost of a bare event."""

    def run_chunk():
        engine = Engine()
        for i in range(1000):
            engine.schedule(float(i), lambda: None)
        engine.run()

    benchmark(run_chunk)


def test_chained_event_throughput(benchmark):
    """Self-rescheduling event chains (the arrival-pump pattern)."""

    def run_chain():
        engine = Engine()
        remaining = [1000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.schedule(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()

    benchmark(run_chain)


def test_facility_queueing_throughput(benchmark):
    """Request->serve->complete cycles through a FIFO facility."""

    def run_queue():
        engine = Engine()
        fac = Facility(engine, "f")
        for i in range(1000):
            engine.schedule_at(float(i), fac.request, 0.5, lambda: None)
        engine.run()

    benchmark(run_queue)


def test_cluster_simulation_events_per_second(benchmark):
    """End-to-end events/s of a small cluster run (reported as extra)."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement import RoundRobinPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    trace = generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=5000, duration=500.0)
    )
    cfg = ClusterConfig(servers=paper_servers(), seed=0)

    def run_sim():
        sim = ClusterSimulation(cfg, RoundRobinPolicy(), trace)
        sim.run()
        return sim.engine.events_fired

    events = benchmark(run_sim)
    benchmark.extra_info["events_fired"] = events
