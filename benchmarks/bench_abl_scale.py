"""Ablation: scaling the cluster (the paper's "previously unmanageable
sizes" claim).

Sweeps cluster size 5..80 (heterogeneous speeds, skewed file sets) and
measures what must stay flat or shrink for the claim to hold:

- probes per locate ~ 2, independent of n (hash addressing);
- membership-change movement ~ the newcomer's fair share 1/n (locality);
- replicated state (partitions, segments) O(n), not O(file sets);
- capacity-normalized balance within a small constant after tuning.
"""

from conftest import quick_mode, run_once

from repro.experiments.scale import scale_study, scale_table


def test_scale_study(benchmark):
    sizes = (5, 10, 20) if quick_mode() else (5, 10, 20, 40, 80)
    points = run_once(benchmark, scale_study, sizes=sizes)

    print()
    print("Scale study: 50 skewed file sets per server, speeds 1/3/5/7/9 cycled")
    print(scale_table(points))

    by_n = {pt.n_servers: pt for pt in points}
    largest, smallest = max(by_n), min(by_n)
    # Addressing stays ~2 probes regardless of size.
    assert all(1.7 < pt.mean_probes < 2.3 for pt in points)
    # Movement on add shrinks roughly like 1/n.
    assert by_n[largest].add_moved_fraction < by_n[smallest].add_moved_fraction
    assert by_n[largest].add_moved_fraction < 3.0 / largest + 0.05
    # Replicated state is O(n): segments per server stay bounded.
    assert all(pt.segments < 4 * pt.n_servers for pt in points)
    # Balance holds within a small constant at every size.
    assert all(pt.balance_cov < 0.6 for pt in points)
