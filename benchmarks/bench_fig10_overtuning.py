"""Figure 10: the over-tuning problem — before and after.

The aggressive early variant (no heuristics) keeps moving file sets without
improving balance: the weakest server cyclically acquires workload, spikes,
sheds it, and returns to zero.  With all three heuristics the cycling is
gone.  The bench measures (a) reconfiguration churn and (b) the number of
idle->loaded->idle oscillations of the weakest server.
"""

from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment
from repro.metrics import count_idle_hot_cycles as oscillations


def test_fig10_overtuning_before_after(benchmark):
    config, results = run_once(benchmark, run_figure, "fig10", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    aggressive, cured = results["anu-aggressive"], results["anu"]

    hot = 0.05  # 50 ms: clearly above a balanced server's latency
    osc_aggr = oscillations(aggressive.series, "server0", hot)
    osc_cured = oscillations(cured.series, "server0", hot)
    print(f"\nweakest-server oscillations: aggressive={osc_aggr} cured={osc_cured}")
    print(f"moves: aggressive={aggressive.moves_started} cured={cured.moves_started}")

    # The heuristics reduce churn and cyclic spiking.
    assert cured.moves_started < aggressive.moves_started
    assert osc_cured <= osc_aggr
    # And they do not cost overall latency: cured mean is no worse than 2x.
    assert cured.mean_latency <= 2.0 * max(aggressive.mean_latency, 1e-4)
