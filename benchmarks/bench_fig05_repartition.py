"""Figure 5: partitioning the unit interval when adding a server.

Starts from four servers with a highly skewed mapped-region distribution,
adds a fifth server, and verifies the paper's claims: the interval is
repartitioned (partition count grows), no existing boundary moves, and a
free partition remains available afterwards.
"""

from conftest import run_once

from repro.experiments.figures import figure5_demo


def test_fig5_repartition_on_add(benchmark):
    rep = run_once(benchmark, figure5_demo)

    print()
    print("Figure 5: repartitioning the unit interval when adding a server")
    print(f"  partitions: {rep.partitions_before} -> {rep.partitions_after}")
    print(f"  boundaries preserved: {rep.boundaries_preserved}")
    print(f"  free partitions after add: {rep.free_partitions_after}")
    for server in sorted(rep.after):
        segs = ", ".join(f"[{a:.3f},{b:.3f})" for a, b in rep.after[server])
        print(f"    {server}: {segs}")

    assert rep.boundaries_preserved
    assert rep.free_partitions_after >= 1
    assert "server5" in rep.after and rep.after["server5"]
