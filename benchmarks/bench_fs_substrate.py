"""Microbenchmarks of the file-system substrate.

Quantifies the §2/§5 cost story at the metadata level: operations are
cheap in-memory tree updates; the expensive part of reconfiguration is the
shared-disk image flush/load (which is why the paper's system moves file
sets conservatively); lock grant/release is O(1).
"""

import pytest

from repro.fs import (
    FsWorkloadConfig,
    LockManager,
    LockMode,
    MetadataCluster,
    Namespace,
    SharedDisk,
    generate_operations,
)


def build_namespace(n_dirs: int = 16, files_per_dir: int = 64) -> Namespace:
    ns = Namespace("bench")
    for d in range(n_dirs):
        ns.mkdir(f"/d{d:02d}")
        for f in range(files_per_dir):
            ns.create(f"/d{d:02d}/f{f:03d}")
    return ns


def test_metadata_op_throughput(benchmark):
    """stat+readdir+create+unlink cycle on a ~1000-node namespace."""
    ns = build_namespace()
    counter = {"i": 0}

    def cycle():
        i = counter["i"] = counter["i"] + 1
        ns.stat("/d00/f000")
        ns.readdir("/d01")
        ns.create(f"/d02/new{i}")
        ns.unlink(f"/d02/new{i}")

    benchmark(cycle)


def test_image_flush_load_cost(benchmark):
    """Serialize + load a ~1000-node file-set image — the per-move cost."""
    disk = SharedDisk()
    ns = build_namespace()
    disk.format_fileset(ns)

    def flush_load():
        disk.flush(ns, server="s1")
        disk.load("bench")

    benchmark(flush_load)


def test_lock_grant_release_cost(benchmark):
    lm = LockManager()
    counter = {"i": 0}

    def cycle():
        i = counter["i"] = counter["i"] + 1
        path = f"/f{i % 100}"
        lm.acquire("c1", path, LockMode.EXCLUSIVE)
        lm.release("c1", path)

    benchmark(cycle)


@pytest.mark.parametrize("n_filesets", [8, 64])
def test_semantic_op_routing_cost(benchmark, n_filesets):
    """Full path->file set->owner->execute round trip."""
    roots = {f"fs{i}": f"/v{i}" for i in range(n_filesets)}
    cluster = MetadataCluster(["a", "b", "c"], roots)
    ops = generate_operations(
        cluster, FsWorkloadConfig(n_operations=500, duration=10.0, seed=1)
    )
    benchmark.extra_info["n_filesets"] = n_filesets
    idx = {"i": 0}

    def submit_one():
        op = ops[idx["i"] % len(ops)]
        idx["i"] += 1
        cluster.submit(op)

    benchmark(submit_one)
