"""Ablation: the headline comparison driven by a *semantic* FS workload.

The paper's figures use abstract request traces.  This bench derives the
trace from real metadata operations instead (create/stat/readdir/... mixes
against populated namespaces, with per-op-type service costs) and reruns
the four-policy comparison — checking that ANU's win does not depend on
the abstract workload model.
"""

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
from repro.experiments.report import comparison_table
from repro.experiments.runner import run_policy
from repro.fs import FsWorkloadConfig, MetadataCluster, generate_operations, ops_to_trace

POLICIES = ("simple-random", "round-robin", "prescient", "anu")


def build_trace():
    n_ops = 20_000 if quick_mode() else 60_000
    duration = 2_000.0 if quick_mode() else 6_000.0
    roots = {f"vol{i:02d}": f"/vol{i:02d}" for i in range(24)}
    fs_cluster = MetadataCluster(["gen1", "gen2"], roots)
    ops = generate_operations(
        fs_cluster,
        FsWorkloadConfig(
            n_operations=n_ops, duration=duration, popularity_skew=1.4,
            mean_cost=0.25, seed=13,
        ),
    )
    return ops_to_trace(ops, fs_cluster.registry, mean_cost=0.25,
                        duration=duration)


def run_all():
    trace = build_trace()
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=0)
    return trace, {
        name: run_policy(name, trace, cluster) for name in POLICIES
    }


def test_fs_derived_workload_comparison(benchmark):
    trace, results = run_once(benchmark, run_all)
    print()
    print(f"FS-derived workload: {trace} "
          f"(heterogeneity ratio {trace.heterogeneity_ratio():.1f})")
    print(comparison_table(results))

    def worst_tail(res):
        return max(
            res.series.tail_window_mean(s, 10) for s in res.series.servers
        )

    tails = {name: worst_tail(res) for name, res in results.items()}
    print("steady-state worst-server tails (ms): "
          + ", ".join(f"{k}={v * 1000:.1f}" for k, v in tails.items()))

    # The paper's ordering holds on semantic workloads too.  ANU's overall
    # mean includes its convergence transient (here the heaviest file set
    # hashed onto the slowest server at t=0), so the comparison is on the
    # converged steady state — which is what the paper's figures show.
    static_tail = min(tails["simple-random"], tails["round-robin"])
    assert tails["anu"] < static_tail
    assert tails["prescient"] < static_tail
    assert results["prescient"].mean_latency < min(
        results["simple-random"].mean_latency,
        results["round-robin"].mean_latency,
    )
    # ANU converged: its last-10-window worst is far below its own
    # transient peak.
    anu = results["anu"]
    peak = max(anu.series.peak(s) for s in anu.series.servers)
    assert tails["anu"] < peak / 10
