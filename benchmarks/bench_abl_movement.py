"""Ablation: movement volume on membership change (cache preservation).

§4/§5: during failure and recovery ANU "moves the minimum amount of
workload possible by scaling the mapped regions of alive servers"; the
bin-packing comparator must maintain (and may permute) a full file-set
table.  This bench removes and re-adds a server under each policy and
counts how many file sets change owner — the quantity that destroys warm
caches.  Consistent hashing is included as the related-work reference for
minimal movement without tunability.
"""

from conftest import run_once

from repro.core.movement import diff_assignment
from repro.experiments.runner import make_policy

SERVERS = [f"s{i}" for i in range(8)]
FILESETS = [f"fs{i:04d}" for i in range(2000)]
POLICIES = ("anu", "consistent-hash", "round-robin", "simple-random")


def sweep():
    rows = []
    for name in POLICIES:
        policy = make_policy(name)
        before = policy.initial_assignment(FILESETS, SERVERS)
        survivors = [s for s in SERVERS if s != "s3"]
        after_fail = policy.on_membership_change(FILESETS, survivors, before)
        fail_diff = diff_assignment(before, after_fail)
        after_recover = policy.on_membership_change(FILESETS, SERVERS, after_fail)
        recover_diff = diff_assignment(after_fail, after_recover)
        rows.append((name, fail_diff, recover_diff))
    return rows


def test_membership_movement(benchmark):
    rows = run_once(benchmark, sweep)
    orphaned = 1 / len(SERVERS)  # fraction owned by the failed server
    print()
    print("Ablation: file sets moved on fail + recover of 1 of 8 servers "
          f"({len(FILESETS)} file sets; orphaned fraction ~{orphaned:.3f})")
    print(f"{'policy':>16s} {'fail-moved':>11s} {'recover-moved':>14s}")
    for name, fail_diff, recover_diff in rows:
        print(f"{name:>16s} {fail_diff.moved:11d} {recover_diff.moved:14d}")

    by_name = {name: (f, r) for name, f, r in rows}
    # Hash-based schemes (ANU, consistent hashing) move close to the
    # orphaned fraction on failure — far less than a full re-deal would.
    for scheme in ("anu", "consistent-hash"):
        fail_moved = by_name[scheme][0].moved
        assert fail_moved < 2.5 * orphaned * len(FILESETS), scheme
    # Round-robin re-deals by position: adding a server back shifts nearly
    # every file set (the paper's argument against table-based placement).
    assert by_name["round-robin"][1].moved > 0.5 * len(FILESETS)
