"""Microbenchmarks of the core placement operations.

These quantify the paper's §5 scalability claims: addressing and locating
load is hashing only (microseconds, no I/O), and reconfiguration state
scales with servers, not file sets.
"""

import pytest

from repro.core import ANUPlacement, HashFamily, MappedInterval, hash_to_unit
from repro.placement.prescient import lpt_assign

NAMES = [f"/projects/fs{i:05d}" for i in range(1000)]


def test_hash_probe_throughput(benchmark):
    family = HashFamily()

    def probe_all():
        for name in NAMES:
            family.probe(name, 0)

    benchmark(probe_all)


def test_hash_to_unit_single(benchmark):
    benchmark(hash_to_unit, "/projects/fs00042", 0)


@pytest.mark.parametrize("n_servers", [5, 20, 80])
def test_locate_throughput(benchmark, n_servers):
    placement = ANUPlacement([f"s{i}" for i in range(n_servers)])
    benchmark.extra_info["n_servers"] = n_servers

    def locate_all():
        for name in NAMES:
            placement.locate(name)

    benchmark(locate_all)


@pytest.mark.parametrize("n_servers", [5, 20, 80])
def test_set_shares_cost(benchmark, n_servers):
    """One full rescale of every mapped region (the delegate's write path)."""
    servers = [f"s{i}" for i in range(n_servers)]
    interval = MappedInterval(servers)
    weights_a = {s: 1.0 + (i % 7) for i, s in enumerate(servers)}
    weights_b = {s: 1.0 + ((i + 3) % 5) for i, s in enumerate(servers)}
    state = {"flip": False}

    def rescale():
        state["flip"] = not state["flip"]
        interval.set_shares(weights_a if state["flip"] else weights_b)

    benchmark(rescale)
    interval.check_invariants()


@pytest.mark.parametrize("n_servers", [20, 80])
def test_segments_query_cost(benchmark, n_servers):
    """Repeated mapped-region reads on a static interval (monitor path)."""
    servers = [f"s{i}" for i in range(n_servers)]
    interval = MappedInterval(
        servers, {s: 1.0 + (i % 7) for i, s in enumerate(servers)}
    )
    benchmark.extra_info["n_servers"] = n_servers

    def query_all():
        total = 0
        for s in servers:
            total += len(interval.segments(s))
        return total

    benchmark(query_all)


def test_add_remove_server_cost(benchmark):
    interval = MappedInterval([f"s{i}" for i in range(10)])

    def cycle():
        interval.add_server("extra")
        interval.remove_server("extra")

    benchmark(cycle)
    interval.check_invariants()


def test_lpt_assign_cost(benchmark):
    """The bin-packing comparator's cost at paper scale (500 x 5)."""
    demand = {f"fs{i}": float((i * 7919) % 100 + 1) for i in range(500)}
    speeds = {f"s{i}": float(2 * i + 1) for i in range(5)}
    benchmark(lpt_assign, demand, speeds)
