"""Microbenchmarks of the parallel sweep engine.

Two costs worth pinning:

- **Per-cell orchestration overhead** — what ``run_sweep`` adds on top
  of the bare :func:`~repro.sweep.worker.run_cell` calls it wraps (plan
  bookkeeping, shard/merge writes, digest manifest).  The bare-run case
  measures the floor so the overhead stays visible in the report; the
  serial sweep is gated directly against its baseline.
- **Process-executor scaling** — the same grid through a 2-worker spawn
  pool.  Small grids are dominated by pool startup (~1 s), so this case
  pins that constant rather than chasing speedup; it also asserts the
  parallel digest matches the serial one, making the benchmark double
  as a determinism check.
"""

import tempfile
from pathlib import Path

from conftest import quick_mode, run_once

from repro.sweep import GridSpec, run_sweep
from repro.sweep.worker import _scenario_for, run_cell


def _spec() -> GridSpec:
    n_seeds = 3 if quick_mode() else 6
    return GridSpec(
        axes={"policy": ["anu", "random"]},
        seeds=list(range(n_seeds)),
        base={
            "n_filesets": 12,
            "n_requests": 60,
            "duration": 120.0,
            "tuning_interval": 30.0,
        },
    )


def test_bare_cells_floor(benchmark):
    """The floor: every cell run directly through ``run_cell``."""
    plan = _spec().build_plan()

    def bare():
        return [run_cell(cell.payload()) for cell in plan.cells]

    rows = run_once(benchmark, bare)
    assert len(rows) == len(plan)


def test_serial_sweep_overhead(benchmark):
    """Full serial ``run_sweep``: cells plus plan/shard/merge machinery."""
    plan = _spec().build_plan()

    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            return run_sweep(plan, Path(tmp) / "out", executor="serial")

    result = run_once(benchmark, sweep)
    assert result.complete and result.ran == len(plan)


def test_process_sweep_two_workers(benchmark):
    """2-worker spawn-pool sweep; digest must match the serial run."""
    plan = _spec().build_plan()
    with tempfile.TemporaryDirectory() as tmp:
        serial = run_sweep(plan, Path(tmp) / "serial", executor="serial")

    def sweep():
        with tempfile.TemporaryDirectory() as tmp:
            return run_sweep(
                plan, Path(tmp) / "out", executor="process", jobs=2
            )

    result = run_once(benchmark, sweep)
    assert result.complete
    assert result.merged_digest == serial.merged_digest


def test_worker_summary_matches_bare_scenario(benchmark):
    """``run_cell`` adds bookkeeping around ``Scenario``, never work.

    Pins the equivalence the overhead numbers rely on: the worker's
    summary is exactly what a bare seeded scenario run produces.
    """
    cell = _spec().build_plan().cells[0]

    def both():
        row = run_cell(cell.payload())
        result = _scenario_for(cell.seed, cell.params_dict).run_cluster()
        return row, result

    row, result = run_once(benchmark, both)
    assert row["summary"]["mean_latency"] == result.mean_latency
    assert row["summary"]["completed"] == result.completed
