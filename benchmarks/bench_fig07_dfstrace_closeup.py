"""Figure 7: dynamic prescient vs ANU randomization, DFSTrace closeup.

Expected shape (paper §7): prescient begins balanced at t=0 (it packed the
first interval's demand before the run); ANU starts from a uniform guess
and converges "over the first 3 sample periods (6 minutes)".  Both localize
load bursts on the most powerful servers; prescient fits slightly better
because it may permute arbitrarily, but ANU is comparable.
"""

import numpy as np
from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment


def test_fig7_prescient_vs_anu_closeup(benchmark):
    config, results = run_once(benchmark, run_figure, "fig7", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    anu, presc = results["anu"], results["prescient"]

    from repro.metrics import convergence_time

    t_anu = convergence_time(anu.series, threshold=0.05, stable_windows=3)
    t_presc = convergence_time(presc.series, threshold=0.05, stable_windows=3)
    print(f"\nconvergence (<50 ms worst, 3 stable windows): "
          f"prescient at t={t_presc}, ANU at t={t_anu} "
          f"(paper: ANU converges 'over the first 3 sample periods')")
    if t_anu is not None:
        assert t_anu <= 6 * 60.0 + 1e-9  # within the paper's ~6 minutes

    # Prescient starts balanced: its worst first-window latency is modest.
    first_presc = max(
        presc.series.mean_latency[s][0] for s in presc.series.servers
    )
    first_anu = max(anu.series.mean_latency[s][0] for s in anu.series.servers)
    assert first_presc <= first_anu  # ANU pays for its uniform initial guess

    # ANU converges: after the first ~3 tuning periods its worst windowed
    # latency drops well below its own initial transient.
    steady_anu = max(
        float(np.max(anu.series.mean_latency[s][6:]))
        for s in anu.series.servers
    )
    assert steady_anu < max(first_anu, 1e-9) or first_anu == 0.0

    # Comparable steady-state means (same order of magnitude).
    assert anu.mean_latency < 10 * max(presc.mean_latency, 1e-4)
