"""Figure 6: server latency for DFSTrace workloads, four policies.

Five servers (speeds 1,3,5,7,9), DFSTrace-like hour (21 file sets, 112,590
requests), 2-minute tuning interval.  Expected shape (paper §7): the static
policies (simple randomization, round-robin) leave the least powerful
server degrading over the hour while fast servers idle; prescient and ANU
keep every server's latency low, with ANU converging within a few tuning
periods from its uniform initial guess.
"""

from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment


def test_fig6_dfstrace_four_policies(benchmark):
    config, results = run_once(benchmark, run_figure, "fig6", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    def steady_worst(res):
        return max(
            res.series.tail_window_mean(s, 10) for s in res.series.servers
        )

    static_worst = min(  # best static policy's steady-state worst server
        steady_worst(res)
        for name, res in results.items()
        if name in ("simple-random", "round-robin")
    )
    for adaptive in ("prescient", "anu"):
        # Adaptive policies beat even the luckier static policy once
        # converged (run means additionally include ANU's §7 transient,
        # which short quick-mode runs cannot amortize).
        worst = steady_worst(results[adaptive])
        assert worst < static_worst, f"{adaptive} worst {worst} vs {static_worst}"

    # ANU is comparable to prescient overall (same order of magnitude).
    anu, presc = results["anu"], results["prescient"]
    assert anu.mean_latency < 10 * max(presc.mean_latency, 1e-4)
    # Static policies never move file sets; ANU does (but conservatively).
    assert results["round-robin"].moves_started == 0
    assert results["simple-random"].moves_started == 0
    assert 0 < anu.moves_started
    # (quick mode runs are dominated by the convergence rounds, hence the
    # modest floor; the full run sits above 0.8)
    assert anu.ledger.preservation > 0.6
    # ANU preserves placements better than the permuting prescient packer.
    assert anu.ledger.preservation > results["prescient"].ledger.preservation
