"""End-to-end: the queueing figures with tuning over the wire.

Runs the Figure-8-style synthetic comparison with ANU's tuning driven by
the message-level delegate protocol (election, reports, config updates on
a lossy network, sharing the queueing simulation's event engine), with a
delegate crash mid-run.  The result must land in the same regime as the
direct-call delegate — demonstrating that the §4 control plane, not just
the abstract tuner, sustains the paper's results.
"""

from dataclasses import replace

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
from repro.cluster.protocol_driver import ProtocolDrivenCluster
from repro.placement import ANUPolicy
from repro.proto import NetworkConfig
from repro.workloads import SyntheticConfig, generate_synthetic


def run_both():
    n_requests = 12_000 if quick_mode() else 40_000
    duration = 1_500.0 if quick_mode() else 4_000.0
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=120, n_requests=n_requests,
                        duration=duration, seed=5)
    )
    cfg = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                        sample_window=60.0, seed=0)
    direct = ClusterSimulation(cfg, ANUPolicy(), trace).run()
    protocol = ProtocolDrivenCluster(
        cfg, trace,
        network=NetworkConfig(min_latency=0.001, max_latency=0.02, loss=0.05),
        delegate_crash_times=[duration / 2],
    ).run()
    return direct, protocol


def test_protocol_driven_figures(benchmark):
    direct, protocol = run_once(benchmark, run_both)
    r = protocol.run
    print()
    print("Tuning over the wire (5% loss, delegate crash mid-run):")
    print(f"  direct-call delegate: mean {direct.mean_latency * 1000:8.1f} ms, "
          f"{direct.moves_started} moves")
    print(f"  protocol delegate:    mean {r.mean_latency * 1000:8.1f} ms, "
          f"{r.moves_started} moves, {protocol.config_updates_applied} configs, "
          f"{protocol.messages_sent} msgs ({protocol.messages_dropped} dropped)")
    print(f"  delegates over time:  {protocol.delegate_history}")

    assert r.total_requests == direct.total_requests
    # Same regime as the direct-call delegate.
    assert r.mean_latency < 5 * max(direct.mean_latency, 1e-4)
    # The crash really happened and was healed.
    assert len(protocol.delegate_history) >= 2
    assert protocol.config_updates_applied >= 2
