"""Ablation: sensitivity to the DFSTrace substitution parameters.

The DFSTrace data set is synthesized from its published characteristics
(DESIGN.md §2).  If the paper's conclusions depended on a *particular*
setting of the synthesizer's free parameters (activity spread, burst
intensity, epoch count), the substitution would be fragile.  This bench
re-runs the ANU-vs-static comparison across a grid of those parameters
and asserts the ordering survives every cell.
"""

from dataclasses import replace

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, paper_servers
from repro.experiments.runner import run_policy
from repro.workloads import DFSTraceLikeConfig, generate_dfstrace_like

GRID = [
    dict(activity_ratio=120.0, burst_sigma=0.5, epochs=24),   # default
    dict(activity_ratio=200.0, burst_sigma=0.5, epochs=24),   # more skew
    dict(activity_ratio=120.0, burst_sigma=0.8, epochs=24),   # burstier
    dict(activity_ratio=120.0, burst_sigma=0.5, epochs=8),    # longer bursts
    dict(activity_ratio=400.0, burst_sigma=0.8, epochs=12),   # everything up
]


def sweep():
    n_requests = 40_000 if quick_mode() else 112_590
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=1)
    rows = []
    for params in GRID:
        cfg = replace(DFSTraceLikeConfig(seed=7), n_requests=n_requests,
                      **params)
        trace = generate_dfstrace_like(cfg)
        static = run_policy("round-robin", trace, cluster)
        anu = run_policy("anu", trace, cluster)

        def tail(res):
            return max(
                res.series.tail_window_mean(s, 10) for s in res.series.servers
            )

        rows.append((params, tail(static), tail(anu)))
    return rows


def test_substitution_parameter_grid(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Substitution sensitivity: ANU vs round-robin steady tails across "
          "the DFSTrace-like parameter grid")
    print(f"{'ratio':>7s} {'sigma':>6s} {'epochs':>7s} "
          f"{'static(ms)':>11s} {'anu(ms)':>9s}")
    for params, static_tail, anu_tail in rows:
        print(f"{params['activity_ratio']:7.0f} {params['burst_sigma']:6.2f} "
              f"{params['epochs']:7d} {static_tail * 1000:11.1f} "
              f"{anu_tail * 1000:9.1f}")

    # The comparison is not an artifact of one parameter choice.
    for params, static_tail, anu_tail in rows:
        assert anu_tail < static_tail, params