"""Ablation: the delegate's "average" — weighted mean vs median.

§4: "we are using a weighted average of the current latencies.  However, we
also ran experiments using a median.  Results verify that our system is
robust to the choice of an average."  This bench reruns the synthetic
experiment under all three averages and asserts they land within a small
factor of each other.
"""

from conftest import quick_mode, run_once

from repro.cluster.cluster import ClusterSimulation
from repro.core.tuning import TuningConfig
from repro.experiments.config import figure8
from repro.experiments.runner import generate_trace
from repro.placement.anu_policy import ANUPolicy

AVERAGES = ("weighted_mean", "mean", "median")


def sweep():
    config = figure8(quick=quick_mode())
    trace = generate_trace(config.workload_config())
    rows = []
    for avg in AVERAGES:
        policy = ANUPolicy(TuningConfig(average=avg))
        res = ClusterSimulation(config.cluster, policy, trace).run()
        rows.append((avg, res.mean_latency, res.moves_started))
    return rows


def test_average_choice_robustness(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: delegate average (synthetic workload)")
    print(f"{'average':>14s} {'mean(ms)':>10s} {'moves':>7s}")
    for avg, mean, moves in rows:
        print(f"{avg:>14s} {mean * 1000:10.2f} {moves:7d}")

    means = [mean for _, mean, _ in rows]
    # Robustness: all three averages give the same order of magnitude and
    # all remain far below the static-policy regime.
    assert max(means) < 10 * max(min(means), 1e-4)
    assert all(m < 0.1 for m in means)
