"""Microbenchmarks of the determinism sanitizer's hot paths.

The sanitizer's cost model has two sides worth pinning:

- :class:`~repro.runtime.telemetry.DigestSink` — every ``repro-dsan``
  run folds *every* telemetry record through a BLAKE2 chain link, so the
  per-record cost bounds how large a scenario the sanitizer can afford.
  The end-to-end case gates it against the same seeded run through the
  default null sink: hashing the full stream must stay near 2x the
  silent run (the case's baseline median is the precise gate), and the
  summary must be bit-identical (the sink is purely observational).
- :func:`~repro.runtime.telemetry.first_divergence` — bisection over the
  chains; logarithmic, but it runs on chains the size of the whole event
  stream, so a accidental linear scan would be very visible here.
"""

import time

from conftest import quick_mode

from repro.runtime.telemetry import (
    DigestSink,
    RequestCompleted,
    first_divergence,
)


def _records(n):
    return [
        RequestCompleted(time=float(i), server=f"s{i % 8}", latency=0.01)
        for i in range(n)
    ]


def test_digest_sink_emit_throughput(benchmark):
    """Per-record chain-link cost (serialize + BLAKE2 + append)."""
    n = 2_000 if quick_mode() else 20_000
    records = _records(n)

    def fold_stream():
        sink = DigestSink()
        for record in records:
            sink.emit(record)
        return len(sink)

    folded = benchmark(fold_stream)
    assert folded == n


def _cluster_run(telemetry=None):
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement.anu_policy import ANUPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    n = 200 if quick_mode() else 600
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=n, duration=300.0, seed=5)
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=30.0, seed=5
    )
    sim = ClusterSimulation(config, ANUPolicy(), trace, telemetry=telemetry)
    return sim.run()


def test_cluster_run_digest_sink_overhead(benchmark):
    """Full seeded run hashing every event, gated against the null sink.

    This is the sanitizer's end-to-end overhead: what one ``repro-dsan``
    worker pays over the plain simulation it replays.  Also asserts the
    digest stream is deterministic (two identical runs, identical
    chains) and observational (summary matches the silent run).
    """
    silent = _cluster_run()
    sink = DigestSink()
    result = _cluster_run(telemetry=sink)
    benchmark(lambda: _cluster_run(telemetry=DigestSink()))
    assert result.summary() == silent.summary()
    assert len(sink.chain) > 0
    again = DigestSink()
    _cluster_run(telemetry=again)
    assert again.chain == sink.chain

    def median_time(fn):
        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return sorted(times)[1]

    base = median_time(_cluster_run)
    instr = median_time(lambda: _cluster_run(telemetry=DigestSink()))
    overhead = (instr - base) / base * 100.0
    print(
        f"\ndigest overhead: null-sink {base * 1000:.1f}ms, "
        f"digest-sink {instr * 1000:.1f}ms ({overhead:+.1f}%), "
        f"{len(sink.chain)} records hashed"
    )
    # Loose sanity bound only (runs on noisy shared runners); the precise
    # regression gate is this case's median vs the committed baseline.
    assert instr < base * 2.5, "hashing every event should stay near 2x the silent run"


def test_first_divergence_bisection(benchmark):
    """Bisecting a long chain pair must stay logarithmic."""
    n = 20_000 if quick_mode() else 200_000
    where = n // 3
    good = [f"{i:032x}" for i in range(n)]
    bad = good[:where] + [f"{i:031x}X" for i in range(where, n)]

    def bisect_all():
        return (
            first_divergence(good, bad),
            first_divergence(good, list(good)),
            first_divergence(good, good[: n // 2]),
        )

    found = benchmark(bisect_all)
    assert found == (where, None, n // 2)
