"""Ablation: the full baseline ladder.

Orders every placement scheme in the repository on one workload, from
blind static hashing to perfect knowledge:

  simple-random < two-choice < {weighted variants: static knowledge}
      < anu (adaptive, no knowledge) <= prescient (perfect knowledge)

The interesting rungs are the *weighted* static variants — an
administrator hand-configuring capacity weights.  They fix server
heterogeneity but not workload heterogeneity, which is exactly the
paper's argument for adaptivity over configuration ("no knowledge of
hardware capabilities is needed").
"""

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, paper_servers
from repro.experiments.report import comparison_table
from repro.experiments.runner import run_policy
from repro.workloads import SyntheticConfig, generate_synthetic

POLICIES = (
    "simple-random",
    "two-choice",
    "two-choice-weighted",
    "consistent-hash",
    "consistent-hash-weighted",
    "anu",
    "prescient",
)


def run_all():
    n_requests = 15_000 if quick_mode() else 40_000
    duration = 1_500.0 if quick_mode() else 4_000.0
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=150, n_requests=n_requests,
                        duration=duration, seed=9)
    )
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, oracle_horizon=duration,
                            seed=0)
    return {name: run_policy(name, trace, cluster) for name in POLICIES}


def steady_worst(res) -> float:
    return max(res.series.tail_window_mean(s, 10) for s in res.series.servers)


def test_baseline_ladder(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print("Baseline ladder (synthetic workload, steady-state ordering)")
    print(comparison_table(results))
    tails = {name: steady_worst(res) for name, res in results.items()}
    print("steady-state worst-server tails (ms): "
          + ", ".join(f"{k}={v * 1000:.1f}" for k, v in sorted(
              tails.items(), key=lambda kv: kv[1])))

    # Static knowledge helps but does not reach adaptive territory: ANU's
    # steady state beats every static rung, and prescient's overall mean
    # beats every static mean (its *tail* deliberately keeps the slow
    # server busy — LPT equalizes utilization, not idleness).
    static = ("simple-random", "two-choice", "two-choice-weighted",
              "consistent-hash", "consistent-hash-weighted")
    assert tails["anu"] < min(tails[name] for name in static)
    assert results["prescient"].mean_latency < min(
        results[name].mean_latency for name in static
    )
    # Weighted variants beat their unweighted versions (server
    # heterogeneity addressed)...
    assert tails["two-choice-weighted"] <= tails["two-choice"]
    assert tails["consistent-hash-weighted"] <= tails["consistent-hash"]