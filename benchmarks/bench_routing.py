"""Microbenchmarks of the routing plane (:mod:`repro.runtime.routing`).

Routers sit on the per-request dispatch path of all three harness
stacks, so their decision cost is a direct multiplier on simulation
throughput:

- raw ``choose`` cost per router (single / JSQ(d) / weighted JSQ(d));
- JSQ(d) candidate sampling (the ``d < len(candidates)`` draw path);
- EWMA observation folding for the latency-learning router;
- end-to-end r=1 passthrough: the refactored dispatch with an explicit
  ``SingleOwnerRouter`` must cost what the pre-refactor single-owner
  dispatch cost (the 25 % gate on this case is the PR's "no tax on the
  classic configuration" guarantee);
- end-to-end r=2 + JSQ(2): what turning the routing plane on costs.
"""

import numpy as np

from conftest import quick_mode

from repro.runtime.routing import (
    JSQRouter,
    SingleOwnerRouter,
    WeightedPowerOfDRouter,
    make_router,
)

CANDIDATES = ["server0", "server1", "server2"]
QUEUES = {"server0": 3, "server1": 1, "server2": 4}


def _bench_choose(benchmark, router, n):
    """Time n back-to-back routing decisions over a fixed candidate set."""
    queue_len = QUEUES.__getitem__

    def decide():
        total = 0
        for _ in range(n):
            total += router.choose("fs0001", CANDIDATES, queue_len)
        return total

    total = benchmark(decide)
    assert 0 <= total <= 2 * n


def test_single_router_decision_cost(benchmark):
    """The r=1 passthrough decision: must be a constant return."""
    n = 20_000 if quick_mode() else 200_000
    _bench_choose(benchmark, SingleOwnerRouter(), n)


def test_jsq_full_scan_decision_cost(benchmark):
    """JSQ with d >= candidates: queue scan, no sampling draw."""
    n = 10_000 if quick_mode() else 100_000
    _bench_choose(benchmark, JSQRouter(d=3), n)


def test_jsq_sampled_decision_cost(benchmark):
    """JSQ(2) over 3 candidates: the distinct-pair sampling path."""
    n = 10_000 if quick_mode() else 100_000
    router = JSQRouter(d=2)
    router.bind(np.random.default_rng(7))
    _bench_choose(benchmark, router, n)


def test_weighted_jsq_decision_cost(benchmark):
    """Speed-normalized JSQ(2): sampling plus EWMA-scaled scoring."""
    n = 10_000 if quick_mode() else 100_000
    router = WeightedPowerOfDRouter(d=2)
    router.bind(np.random.default_rng(7))
    for name in CANDIDATES:
        router.observe(name, 0.5)
    _bench_choose(benchmark, router, n)


def test_observe_ewma_cost(benchmark):
    """Latency-observation folding (runs on every request completion)."""
    n = 20_000 if quick_mode() else 200_000
    router = WeightedPowerOfDRouter(d=2)

    def observe():
        for i in range(n):
            router.observe(CANDIDATES[i % 3], 0.25)
        return router._ewma

    ewma = benchmark(observe)
    assert len(ewma) == 3


def _cluster_run(router, replication):
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement import ANUPolicy, ReplicatedPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    n = 800 if quick_mode() else 4_000
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=30, n_requests=n, duration=1000.0, seed=7)
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=120.0, seed=7
    )
    policy = (ReplicatedPolicy(ANUPolicy(), replication)
              if replication > 1 else ANUPolicy())
    return ClusterSimulation(
        config, policy, trace, router=router, replication=replication
    ), n


def test_cluster_r1_passthrough_overhead(benchmark):
    """End-to-end dispatch with SingleOwnerRouter + r=1.

    This is the refactored equivalent of the pre-refactor single-owner
    run; the regression gate on this case bounds the routing-plane tax
    on the classic configuration.
    """
    def run():
        sim, n = _cluster_run(SingleOwnerRouter(), 1)
        return sim.run(), n

    result, n = benchmark(run)
    assert sum(result.completed.values()) == n


def test_cluster_r2_jsq_dispatch_cost(benchmark):
    """End-to-end dispatch with the routing plane on (r=2, JSQ(2))."""
    def run():
        sim, n = _cluster_run(make_router("jsq2"), 2)
        return sim.run(), n

    result, n = benchmark(run)
    assert sum(result.completed.values()) == n
