"""Microbenchmarks of the membership subsystem (:mod:`repro.membership`).

All three harness stacks now route every server-set change through the
shared roster/director/injector core, so its hot paths sit on the
fault-handling critical path of every chaos run:

- ``FaultSchedule`` ordered insertion (the ``bisect.insort`` rewrite of
  the old sort-on-every-add);
- roster replay cost of applying a long valid schedule
  (``apply_event`` dispatch + state-machine transition checks);
- ``FaultInjector`` schedule-generation throughput (per-server
  exponential draws, churn streams, validity filtering);
- a churn-heavy end-to-end ``ClusterSimulation`` run where the director
  re-places file sets and re-injects orphans on every event.
"""

from conftest import quick_mode

from repro.membership import (
    ChaosProfile,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FaultInjector,
    MembershipRoster,
    apply_event,
)
from repro.sim.rng import StreamFactory
from repro.units import Seconds

CHURN = ChaosProfile(
    mttf=Seconds(240.0),
    mttr=Seconds(45.0),
    decommission_every=Seconds(400.0),
    commission_every=Seconds(350.0),
    delegate_crash_every=Seconds(500.0),
    min_live=2,
    max_commissions=8,
)

SPEEDS = {f"server{i}": float(s) for i, s in enumerate([1, 3, 5, 7, 9])}


def _alternating_events(n):
    """A long legal fail/recover stream over a 16-server fleet."""
    rng = StreamFactory(7).stream("bench-events")
    servers = [f"s{i:02d}" for i in range(16)]
    roster = MembershipRoster(servers)
    events = []
    time = 0.0
    while len(events) < n:
        time += float(rng.uniform(0.1, 2.0))
        down = [s for s in servers if not roster.is_live(s)]
        if down and (len(down) > 8 or rng.random() < 0.5):
            victim = down[int(rng.integers(len(down)))]
            roster.recover(victim)
            events.append(FaultEvent(Seconds(time), FaultKind.RECOVER, victim))
        else:
            live = roster.live()
            victim = live[int(rng.integers(len(live)))]
            roster.fail(victim)
            events.append(FaultEvent(Seconds(time), FaultKind.FAIL, victim))
    return events


def test_schedule_insert_throughput(benchmark):
    """Ordered insertion of N events given in shuffled order."""
    n = 1_000 if quick_mode() else 5_000
    events = _alternating_events(n)
    shuffled = list(events)
    StreamFactory(11).stream("bench-shuffle").shuffle(shuffled)  # type: ignore[arg-type]

    def build():
        schedule = FaultSchedule()
        for event in shuffled:
            schedule.add(event)
        return len(schedule)

    built = benchmark(build)
    assert built == n


def test_roster_replay_cost(benchmark):
    """apply_event dispatch + transition checks over a long schedule."""
    n = 2_000 if quick_mode() else 10_000
    events = _alternating_events(n)

    def replay():
        roster = MembershipRoster([f"s{i:02d}" for i in range(16)])
        for event in events:
            apply_event(roster, event)
        return roster.live_count

    live = benchmark(replay)
    assert live >= 1


def test_injector_generation_throughput(benchmark):
    """Seeded schedule generation over a long horizon (full churn)."""
    horizon = Seconds(20_000.0 if quick_mode() else 100_000.0)

    def generate():
        injector = FaultInjector(SPEEDS, CHURN, seed=9)
        return len(injector.generate(horizon))

    events = benchmark(generate)
    assert events > 50


def test_degraded_event_application_cost(benchmark):
    """Gray-failure hot path: DEGRADE/RESTORE through roster + director.

    Degrade/restore events skip re-placement entirely (set_speed only),
    so applying a long limp-heavy schedule must stay cheap — this case
    gates the short-circuit path against the committed baseline.
    """
    rng = StreamFactory(13).stream("bench-degrade")
    servers = [f"s{i:02d}" for i in range(16)]
    n = 2_000 if quick_mode() else 10_000
    events = []
    time = 0.0
    limping = set()
    while len(events) < n:
        time += float(rng.uniform(0.1, 2.0))
        if limping and (len(limping) > 8 or rng.random() < 0.5):
            victim = sorted(limping)[int(rng.integers(len(limping)))]
            limping.discard(victim)
            events.append(FaultEvent(Seconds(time), FaultKind.RESTORE, victim))
        else:
            healthy = [s for s in servers if s not in limping]
            victim = healthy[int(rng.integers(len(healthy)))]
            limping.add(victim)
            events.append(
                FaultEvent(
                    Seconds(time), FaultKind.DEGRADE, victim,
                    factor=float(rng.uniform(0.1, 0.9)),
                )
            )

    def replay():
        roster = MembershipRoster(servers)
        for event in events:
            apply_event(roster, event)
        return len(roster.degraded())

    degraded = benchmark(replay)
    assert 0 <= degraded <= len(servers)


def test_two_choice_orphan_replacement_cost(benchmark):
    """Micro-regression: orphan re-placement must not re-sort survivors.

    ``TwoChoicePolicy.on_membership_change`` used to call
    ``sorted(live)`` inside the per-orphan loop — O(k·n log n) for k
    orphans — even though the survivor set is fixed for the whole
    membership change.  This case pins the hoisted-sort cost: a fleet
    losing its most-loaded server re-places ~1/n of a large universe.
    """
    from repro.placement import TwoChoicePolicy

    servers = [f"s{i:02d}" for i in range(32)]
    filesets = [f"fs{i:05d}" for i in range(2_000 if quick_mode() else 20_000)]
    policy = TwoChoicePolicy()
    assignment = policy.initial_assignment(filesets, servers)
    victim = max(set(assignment.values()),
                 key=lambda s: sum(1 for o in assignment.values() if o == s))
    survivors = [s for s in servers if s != victim]

    def replace():
        return policy.on_membership_change(filesets, survivors, assignment)

    new = benchmark(replace)
    assert set(new) == set(filesets)
    assert victim not in set(new.values())


def test_churn_heavy_cluster_run(benchmark):
    """End-to-end queueing run under continuous membership churn."""
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement.anu_policy import ANUPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    n = 500 if quick_mode() else 3_000
    trace = generate_synthetic(
        SyntheticConfig(
            n_filesets=40,
            n_requests=n,
            duration=1200.0,
            request_cost=0.3,
            seed=3,
        )
    )
    faults = FaultInjector(SPEEDS, CHURN, seed=4).generate(
        Seconds(trace.duration)
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=120.0, seed=1
    )

    def run():
        sim = ClusterSimulation(config, ANUPolicy(), trace, faults)
        return sim.run()

    result = benchmark(run)
    assert sum(result.completed.values()) == len(trace)
    assert len(faults) > 10 and result.retries >= 0
