"""Ablation: enterprise hosting — servers that come and go with demand.

§1's motivating deployment: "the same server might be deployed in
different clusters at different times during the same day or hour, as
needed in enterprise hosting."  We build a compressed day — quiet night,
busy day, quiet night — and redeploy the two fastest servers elsewhere
overnight (decommission) and back in the morning (commission).  ANU must
absorb both the workload swing and the capacity swing with zero
configuration: every request completes, membership changes move roughly
the fair share of file sets, and daytime latency returns to the pre-night
steady state.
"""

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, FaultSchedule, paper_servers
from repro.experiments.report import series_block
from repro.experiments.runner import run_policy
from repro.workloads import SyntheticConfig, Trace, generate_synthetic


def build_day(scale: float):
    """Night (low rate) / day (high rate) / night, same file-set universe."""
    def seg(n_requests, duration, seed):
        return generate_synthetic(SyntheticConfig(
            n_filesets=100, n_requests=int(n_requests * scale),
            duration=duration * scale, seed=seed,
        ))

    night1 = seg(4_000, 1_000.0, seed=31)
    day = seg(30_000, 2_000.0, seed=32)
    night2 = seg(4_000, 1_000.0, seed=33)
    return Trace.concatenate([night1, day, night2]), 1_000.0 * scale, 3_000.0 * scale


def run_day():
    scale = 0.5 if quick_mode() else 1.0
    trace, day_start, day_end = build_day(scale)
    # Overnight the two fastest servers serve another cluster; they return
    # for the busy day.
    faults = (
        FaultSchedule()
        .decommission(1.0, "server4")
        .decommission(1.0, "server3")
        .recover(day_start, "server4")
        .recover(day_start, "server3")
        .decommission(day_end, "server4")
        .decommission(day_end, "server3")
    )
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=2)
    return trace, (day_start, day_end), run_policy("anu", trace, cluster, faults)


def test_enterprise_hosting_day(benchmark):
    trace, (day_start, day_end), res = run_once(benchmark, run_day)
    print()
    print("Enterprise hosting: fast servers redeployed overnight "
          f"(away before t={day_start:.0f}s and after t={day_end:.0f}s)")
    print(series_block("[anu]", res.series))
    print(f"moves: {res.moves_started}, preservation: "
          f"{res.ledger.preservation:.3f}, retries: {res.retries}")

    # Nothing lost across four membership changes + workload swings.
    assert res.total_requests == len(trace)
    assert res.retries == 0  # decommissions are graceful
    window = res.series.window
    # The big servers really were absent at night...
    for s in ("server3", "server4"):
        night1 = res.series.counts[s][2 : int(day_start // window) - 1]
        assert night1.sum() == 0, s
        # ...and carried the day.
        day = res.series.counts[s][
            int(day_start // window) + 2 : int(day_end // window) - 1
        ]
        assert day.sum() > 0, s
    # Daytime steady state is healthy despite the morning re-shuffle.
    mid = int((day_start + (day_end - day_start) * 0.75) // window)
    daytime_worst = max(
        float(res.series.mean_latency[s][mid]) for s in res.series.servers
    )
    assert daytime_worst < 0.25
    # Movement stays proportional to what actually changed hands.  The
    # evening event legitimately moves a large share (the two fast servers
    # hold most of the tuned load when they leave), but across the whole
    # day most placements survive.
    assert res.ledger.preservation > 0.7
    assert max(res.ledger.moves_per_reconfig) < 100  # never a full re-deal