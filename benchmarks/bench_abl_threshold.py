"""Ablation: the thresholding parameter t.

The paper (§6) says "the proper choice of t depends on workload
heterogeneity ... fairly large values of t are necessary".  This bench
sweeps t on the synthetic workload and prints mean latency and churn: small
t over-tunes (many moves, no better balance); large t under-tunes.
"""

from conftest import quick_mode, run_once

from repro.cluster.cluster import ClusterSimulation
from repro.core.tuning import TuningConfig
from repro.experiments.config import figure8
from repro.experiments.runner import generate_trace
from repro.placement.anu_policy import ANUPolicy

THRESHOLDS = (0.2, 0.5, 1.0, 2.0)


def sweep():
    config = figure8(quick=quick_mode())
    trace = generate_trace(config.workload_config())
    rows = []
    for t in THRESHOLDS:
        policy = ANUPolicy(TuningConfig(threshold=t))
        res = ClusterSimulation(config.cluster, policy, trace).run()
        rows.append((t, res.mean_latency, res.moves_started))
    return rows


def test_threshold_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: thresholding parameter t (synthetic workload)")
    print(f"{'t':>6s} {'mean(ms)':>10s} {'moves':>7s}")
    for t, mean, moves in rows:
        print(f"{t:6.2f} {mean * 1000:10.2f} {moves:7d}")

    by_t = {t: (mean, moves) for t, mean, moves in rows}
    # Small t churns more than large t.
    assert by_t[0.2][1] > by_t[2.0][1]
    # Every setting still beats static placement by a wide margin
    # (static means are hundreds of ms on this workload).
    assert all(mean < 0.1 for _, mean, _ in rows)
