"""Figure 9: prescient vs ANU randomization, synthetic-workload closeup.

Expected shape (paper §7): prescient places a single small file set on the
least powerful server — the optimal configuration.  ANU cannot pick which
file set lands on which server, so the least powerful server ends with *no*
load in the steady state (top-off tuning lets it idle); its occasional
attempts to acquire a file set show up as latency spikes.
"""

import numpy as np
from conftest import quick_mode, run_once

from repro.experiments.figures import run_figure
from repro.experiments.report import render_experiment


def test_fig9_prescient_vs_anu_closeup(benchmark):
    config, results = run_once(benchmark, run_figure, "fig9", quick=quick_mode())
    print()
    print(render_experiment(config.experiment_id, config.description, results))

    anu, presc = results["anu"], results["prescient"]

    # The weakest server under ANU ends (steady state) with little to no
    # load: its tail request count is far below its fair 1/5 share.
    tail_counts = {
        s: float(anu.series.counts[s][-10:].sum()) for s in anu.series.servers
    }
    total_tail = sum(tail_counts.values())
    if total_tail > 0:
        assert tail_counts["server0"] < 0.10 * total_tail

    # Prescient keeps every server's run-mean latency low; ANU is
    # comparable on the servers that carry the load.
    for s in presc.series.servers:
        assert presc.series.mean_over_run(s) < 0.5
    carrying = [s for s in anu.series.servers if s != "server0"]
    worst_anu_carrying = max(anu.series.tail_window_mean(s, 10) for s in carrying)
    assert worst_anu_carrying < 0.2

    # ANU's convergence: steady-state worst window far below the initial
    # transient on the weak server.
    first = max(anu.series.mean_latency[s][0] for s in anu.series.servers)
    steady = max(
        float(np.max(anu.series.mean_latency[s][10:])) for s in anu.series.servers
    )
    assert steady <= first or first == 0.0

    # The weak server's episodes are countable spikes, not sustained load —
    # the paper: "its efforts to place a file set ... result in much larger
    # latency than is tolerable".
    from repro.metrics import find_spikes

    spikes = find_spikes(anu.series, "server0", threshold=0.05)
    print(f"\nserver0 latency spikes (>50 ms): "
          + ", ".join(f"t={s.start:.0f}s peak={s.peak * 1000:.0f}ms"
                      for s in spikes))
    assert len(spikes) <= 6  # episodes, not oscillation
