"""Figure 4: dealing with non-uniform workload.

Four uniform servers, file sets with skewed (Zipf-like) workloads.  After
reorganization, servers hosting heavy file sets hold smaller mapped
regions; the latency proxy is balanced even though file-set *counts*
diverge — the paper's point that region scaling absorbs workload skew.
"""

from conftest import run_once

from repro.experiments.figures import figure4_demo
from repro.experiments.report import interval_bar


def test_fig4_workload_heterogeneity(benchmark):
    demo = run_once(benchmark, figure4_demo)

    print()
    print("Figure 4: workload heterogeneity (uniform servers; skewed file sets)")
    print(f"  initial shares: { {k: round(v, 3) for k, v in demo.initial_shares.items()} }")
    print(f"  final shares:   { {k: round(v, 3) for k, v in demo.final_shares.items()} }")
    print(f"  initial counts: {demo.initial_counts}")
    print(f"  final counts:   {demo.final_counts}")
    print(f"  latency spread: {demo.initial_latency_spread:.2f} -> "
          f"{demo.final_latency_spread:.2f} in {demo.iterations} iteration(s)")
    print(interval_bar(demo.placement.interval))

    assert demo.final_latency_spread <= demo.initial_latency_spread
    assert demo.final_latency_spread < 1.3
    # Counts diverge: at least one server holds far fewer (heavy) file sets.
    counts = demo.final_counts.values()
    assert max(counts) > 1.5 * min(counts)
    demo.placement.check_invariants()
