"""Ablation: the tuning-interval length.

§7: "we found two minutes to strike a balance between over-tuning and
responsiveness.  We note that it takes five to ten seconds to move a file
set..."  This bench sweeps the interval on the bursty DFSTrace-like
workload: very short intervals chase noise (more moves), very long ones
react too slowly (higher worst-server latency during convergence).
"""

from dataclasses import replace

from conftest import quick_mode, run_once

from repro.cluster.cluster import ClusterSimulation
from repro.experiments.config import figure6
from repro.experiments.runner import generate_trace
from repro.placement.anu_policy import ANUPolicy

INTERVALS = (30.0, 120.0, 600.0)


def sweep():
    config = figure6(quick=quick_mode())
    trace = generate_trace(config.workload_config())
    rows = []
    for interval in INTERVALS:
        cluster = replace(config.cluster, tuning_interval=interval)
        res = ClusterSimulation(cluster, ANUPolicy(), trace).run()
        worst = max(res.series.mean_over_run(s) for s in res.series.servers)
        rows.append((interval, res.mean_latency, worst, res.moves_started))
    return rows


def test_tuning_interval_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: tuning interval (DFSTrace-like workload)")
    print(f"{'interval(s)':>12s} {'mean(ms)':>10s} {'worst(ms)':>10s} {'moves':>7s}")
    for interval, mean, worst, moves in rows:
        print(f"{interval:12.0f} {mean * 1000:10.2f} {worst * 1000:10.2f} {moves:7d}")

    by_iv = {iv: (mean, worst, moves) for iv, mean, worst, moves in rows}
    # Shorter intervals reconfigure more.
    assert by_iv[30.0][2] >= by_iv[600.0][2]
    # The paper's 2-minute choice is not worse than the extremes on mean
    # latency (ties allowed: the assertion is about the same regime).
    assert by_iv[120.0][0] <= 3 * min(m for m, _, _ in by_iv.values())
