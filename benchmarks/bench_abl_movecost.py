"""Ablation: the cost of moving a file set.

§7: "it takes five to ten seconds to move a file set ... Therefore, our
system is relatively conservative in moving data in response to short-term
bursts."  This bench sweeps the move-cost model — free moves, the paper's
5-10 s + cold cache, and a punitive 30-60 s — and shows how the cost of
reconfiguration shapes what adaptivity is worth: expensive moves hurt the
transient but ANU's conservative movement keeps the steady state intact.
"""

from dataclasses import replace

from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, MoveCostModel, paper_servers
from repro.cluster.cluster import ClusterSimulation
from repro.placement import ANUPolicy
from repro.workloads import SyntheticConfig, generate_synthetic

MODELS = {
    "free": MoveCostModel(0.0, 0.0, 0, 1.0),
    "paper (5-10s, cold x2)": MoveCostModel(5.0, 10.0, 32, 2.0),
    "punitive (30-60s, cold x4)": MoveCostModel(30.0, 60.0, 128, 4.0),
}


def sweep():
    n_requests = 15_000 if quick_mode() else 40_000
    duration = 1_500.0 if quick_mode() else 4_000.0
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=120, n_requests=n_requests,
                        duration=duration, seed=4)
    )
    base = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                         sample_window=60.0, seed=0)
    rows = []
    for name, model in MODELS.items():
        cluster = replace(base, move_cost=model)
        res = ClusterSimulation(cluster, ANUPolicy(), trace).run()
        steady = max(
            res.series.tail_window_mean(s, 10) for s in res.series.servers
        )
        rows.append((name, res.mean_latency, steady, res.moves_started))
    return rows


def test_move_cost_sweep(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print("Ablation: move-cost model (ANU, synthetic workload)")
    print(f"{'model':>28s} {'mean(ms)':>10s} {'steady-worst(ms)':>17s} {'moves':>7s}")
    for name, mean, steady, moves in rows:
        print(f"{name:>28s} {mean * 1000:10.2f} {steady * 1000:17.2f} {moves:7d}")

    by_name = {name: (mean, steady) for name, mean, steady, _ in rows}
    # Steady state survives even punitive move costs (conservative moving).
    assert by_name["punitive (30-60s, cold x4)"][1] < 0.15
    # Costlier moves cannot *improve* the mean.
    assert by_name["free"][0] <= by_name["punitive (30-60s, cold x4)"][0] * 1.5