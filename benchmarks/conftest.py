"""Shared helpers for the benchmark suite.

Benchmarks run the paper's experiments at full published scale by default;
set ``REPRO_BENCH_QUICK=1`` to run the same shapes at reduced scale (CI).
Each figure bench prints the series/rows the paper's figure plots, so
``pytest benchmarks/ --benchmark-only`` output doubles as the reproduction
record (EXPERIMENTS.md quotes it).
"""

from __future__ import annotations

import os

# Benchmarks measure the production hot path: compile the runtime contract
# layer out (see repro.contracts) unless the caller explicitly overrides.
# This must run before any ``repro`` import, which is why it lives here.
os.environ.setdefault("REPRO_CONTRACTS", "off")

import pytest


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    return quick_mode()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
