"""Ablation: temporal heterogeneity (workload shifts).

The paper claims ANU handles "temporal heterogeneity — changing load
placement in response to workload shifts" (§1) but shows no dedicated
figure.  This bench rotates the hot file-set identity every quarter of the
run while keeping the aggregate rate constant:

- static policies collapse whenever a hot set lands on a slow server in
  *any* phase (no way to react);
- prescient tracks every shift (with heavy movement — it re-packs);
- ANU re-converges within a few tuning intervals of each shift, from
  latency observations alone, with far fewer moves.
"""

import numpy as np
from conftest import quick_mode, run_once

from repro.cluster import ClusterConfig, paper_servers
from repro.experiments.report import comparison_table
from repro.experiments.runner import run_policy
from repro.workloads import ShiftingConfig, generate_shifting

POLICIES = ("round-robin", "simple-random", "prescient", "anu")


def run_all():
    n_requests = 25_000 if quick_mode() else 50_000
    duration = 2_500.0 if quick_mode() else 5_000.0
    cfg = ShiftingConfig(
        n_filesets=100, n_requests=n_requests, duration=duration,
        phase_length=duration / 4, seed=3,
    )
    trace = generate_shifting(cfg)
    cluster = ClusterConfig(servers=paper_servers(), tuning_interval=120.0,
                            sample_window=60.0, seed=0)
    return cfg, {name: run_policy(name, trace, cluster) for name in POLICIES}


def test_workload_shifts(benchmark):
    cfg, results = run_once(benchmark, run_all)
    print()
    print(f"Temporal heterogeneity: hot set rotates every "
          f"{cfg.phase_length:.0f}s ({cfg.n_phases} phases)")
    print(comparison_table(results))

    anu = results["anu"]
    # Per-phase steady state: the last two windows of each phase, after
    # ANU has had time to react to the shift.
    window = anu.series.window
    per_phase_worst = []
    for p in range(cfg.n_phases):
        end_idx = int(min((p + 1) * cfg.phase_length, cfg.duration) // window)
        sl = slice(max(end_idx - 2, 0), end_idx)
        worst = max(
            float(np.max(anu.series.mean_latency[s][sl]))
            for s in anu.series.servers
        )
        per_phase_worst.append(worst)
    print("ANU end-of-phase worst-window latency (ms): "
          + ", ".join(f"{v * 1000:.1f}" for v in per_phase_worst))

    # ANU re-converged by the end of every phase.
    assert all(v < 0.25 for v in per_phase_worst)
    # Static policies do far worse overall.
    static_mean = min(results["round-robin"].mean_latency,
                      results["simple-random"].mean_latency)
    assert anu.mean_latency < static_mean
    # Prescient tracks shifts but at much higher movement cost.
    assert results["prescient"].moves_started > 3 * anu.moves_started