"""Microbenchmarks of the shared simulation runtime (:mod:`repro.runtime`).

Every harness (queueing cluster, timed full system, message protocol) now
routes its delegate rounds, arrival scheduling, and result summaries
through one core; these benches pin that core's hot paths so regressions
surface independently of any one harness:

- the :class:`~repro.runtime.loop.TuningLoop` round cadence itself
  (context build -> decide -> reschedule, with the decision stubbed out);
- telemetry-sink overhead: the same seeded cluster run with the default
  null sink versus an in-memory sink, asserting the event stream is
  purely observational (bit-identical summaries either way);
- :class:`~repro.runtime.telemetry.JsonlSink` serialization throughput;
- :class:`~repro.runtime.arrivals.ArrivalPump` lazy-chain throughput.

The null-sink path is additionally gated end-to-end: the pre-refactor
``micro_sim`` baseline times a full ``ClusterSimulation`` run, so any
measurable overhead from the telemetry guard would breach that suite's
25% gate.
"""

import io
import time

from conftest import quick_mode

from repro.core.tuning import ServerReport
from repro.placement.base import TuningContext
from repro.runtime import (
    ArrivalPump,
    JsonlSink,
    MemorySink,
    TuningLoop,
)
from repro.runtime.telemetry import RequestCompleted
from repro.sim import Engine
from repro.sim.rng import StreamFactory


class _SyntheticHost:
    """A minimal :class:`~repro.runtime.loop.TuningHost`.

    Builds realistic-size contexts (8 servers, 64 file sets, fresh report
    lists each round) but decides "no change", so the bench isolates the
    loop's own cost: scheduling, context assembly, history tracking.
    """

    def __init__(self, n_servers: int = 8, n_filesets: int = 64) -> None:
        self.servers = [f"s{i}" for i in range(n_servers)]
        self.filesets = [f"fs{i:03d}" for i in range(n_filesets)]
        self.assignment = {
            fs: self.servers[i % n_servers] for i, fs in enumerate(self.filesets)
        }
        self.rng = StreamFactory(3).stream("bench-host")
        self.realized = 0

    def build_tuning_context(self, now, interval, previous_reports):
        reports = [
            ServerReport(name=s, mean_latency=0.01 * (i + 1), request_count=100)
            for i, s in enumerate(self.servers)
        ]
        return TuningContext(
            time=now,
            filesets=self.filesets,
            servers=self.servers,
            assignment=self.assignment,
            reports=reports,
            previous_reports=previous_reports,
            rng=self.rng,
        )

    def decide(self, context):
        return None, None

    def realize(self, old, new):
        self.realized += 1

    def membership_assignment(self):
        raise NotImplementedError


def test_tuning_loop_round_cost(benchmark):
    """Cost of N no-change delegate rounds through the shared loop."""
    rounds = 200 if quick_mode() else 1000

    def run_rounds():
        engine = Engine()
        host = _SyntheticHost()
        loop = TuningLoop(
            engine, interval=10.0, duration=10.0 * rounds, host=host
        )
        loop.start(10.0)
        engine.run()
        return loop.rounds

    ran = benchmark(run_rounds)
    assert ran == rounds


def _cluster_run(telemetry=None):
    from repro.cluster import ClusterConfig, ClusterSimulation, paper_servers
    from repro.placement.anu_policy import ANUPolicy
    from repro.workloads import SyntheticConfig, generate_synthetic

    n = 200 if quick_mode() else 600
    trace = generate_synthetic(
        SyntheticConfig(n_filesets=60, n_requests=n, duration=300.0, seed=5)
    )
    config = ClusterConfig(
        servers=paper_servers(), tuning_interval=30.0, seed=5
    )
    sim = ClusterSimulation(config, ANUPolicy(), trace, telemetry=telemetry)
    return sim.run()


def test_cluster_run_null_sink(benchmark):
    """Adapter hot path with telemetry off (the default null sink)."""
    result = benchmark(_cluster_run)
    assert result.total_requests > 0


def test_cluster_run_memory_sink_overhead(benchmark):
    """Same seeded run streaming telemetry into a memory sink.

    Asserts the stream is observational: the instrumented run's summary is
    bit-identical to a silent run's, and the wall-clock overhead of
    recording every event stays within a loose CI-noise bound.
    """
    silent = _cluster_run()
    sink = MemorySink()
    result = _cluster_run(telemetry=sink)
    benchmark(lambda: _cluster_run(telemetry=MemorySink()))
    assert result.summary() == silent.summary()
    counts = sink.counts()
    assert counts["arrival"] == result.total_requests
    assert counts["completion"] == result.total_requests
    assert counts["tuning"] == result.tuning_rounds

    # Rough paired timing (median of 3) just for the printed record; the
    # regression gate is the per-case median above.
    def median_time(fn):
        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return sorted(times)[1]

    base = median_time(_cluster_run)
    instr = median_time(lambda: _cluster_run(telemetry=MemorySink()))
    overhead = (instr - base) / base * 100.0
    print(
        f"\ntelemetry overhead: null-sink {base * 1000:.1f}ms, "
        f"memory-sink {instr * 1000:.1f}ms ({overhead:+.1f}%), "
        f"{sum(counts.values())} records"
    )
    assert instr < base * 2.0, "full event capture should cost <2x the silent run"


def test_jsonl_sink_throughput(benchmark):
    """Serialize-and-write cost per telemetry record (JSONL sink)."""
    n = 2_000 if quick_mode() else 20_000

    def write_stream():
        buf = io.StringIO()
        sink = JsonlSink(buf)
        for i in range(n):
            sink.emit(
                RequestCompleted(
                    time=float(i), server=f"s{i % 8}", latency=0.01
                )
            )
        return buf.tell()

    written = benchmark(write_stream)
    assert written > 0


def test_arrival_pump_throughput(benchmark):
    """Lazy-chained arrival delivery of a 10k-item stream."""
    n = 1_000 if quick_mode() else 10_000
    items = [(float(i) * 0.01, i) for i in range(n)]

    def pump_all():
        engine = Engine()
        seen = [0]

        def on_arrival(item):
            seen[0] += 1

        pump = ArrivalPump(
            engine, iter(items), on_arrival, time_of=lambda it: it[0]
        )
        pump.start()
        engine.run()
        return pump.delivered

    delivered = benchmark(pump_all)
    assert delivered == n
